"""Patch discriminator D.

Judges whether a monochrome patch looks like a Four-Shapes sample. Three
stride-2 conv blocks followed by global pooling and a dense logit. The
discriminator is what keeps G's output on the shape manifold — the paper's
mechanism for controllable, stealthy decals.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F

__all__ = ["PatchDiscriminator"]


class PatchDiscriminator(nn.Module):
    """Discriminator mapping (N, 1, k, k) patches to real/fake logits."""

    def __init__(self, patch_size: int, base_channels: int = 16, seed: int = 1):
        super().__init__()
        self.patch_size = patch_size
        rng = np.random.default_rng(seed)
        c = base_channels
        self.conv1 = nn.Conv2d(1, c, 3, stride=2, padding=1, rng=rng)
        self.conv2 = nn.Conv2d(c, c * 2, 3, stride=2, padding=1, rng=rng)
        self.conv3 = nn.Conv2d(c * 2, c * 4, 3, stride=2, padding=1, rng=rng)
        self.act = nn.LeakyReLU(0.2)
        self.classify = nn.Linear(c * 4, 1, rng=rng)

    def forward(self, patch: nn.Tensor) -> nn.Tensor:
        """Return real/fake logits of shape (N, 1)."""
        if patch.shape[-1] != self.patch_size or patch.shape[1] != 1:
            raise ValueError(
                f"expected (N, 1, {self.patch_size}, {self.patch_size}), got {patch.shape}"
            )
        x = self.act(self.conv1(patch))
        x = self.act(self.conv2(x))
        x = self.act(self.conv3(x))
        # Global average pool then dense logit.
        x = x.mean(axis=(2, 3))
        return self.classify(x)
