"""`repro.gan` — the shape-constrained patch GAN."""

from .discriminator import PatchDiscriminator
from .generator import PatchGenerator
from .losses import discriminator_loss, generator_adversarial_loss
from .trainer import GanTrainConfig, train_gan

__all__ = [
    "PatchGenerator",
    "PatchDiscriminator",
    "discriminator_loss",
    "generator_adversarial_loss",
    "GanTrainConfig",
    "train_gan",
]
