"""Patch generator G(z).

A DCGAN-style generator producing one-channel (monochrome) k×k patches in
[0, 1]: dense projection to a coarse feature map, two nearest-neighbour
upsample + conv stages, then a 1×1 conv and sigmoid. A final bilinear
resize hits patch sizes that are not multiples of 4 (the paper sweeps
k ∈ {20, 40, 60, 80}).

Monochrome output is a paper design decision, not a shortcut: single-color
decals survive printing (§II-B) and look like ordinary road paint.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.init import dcgan_normal

__all__ = ["PatchGenerator"]


class PatchGenerator(nn.Module):
    """Generator mapping latent noise to a monochrome patch.

    Parameters
    ----------
    patch_size:
        Output side length k in pixels.
    latent_dim:
        Dimension of the noise input z.
    base_channels:
        Channel width of the coarsest feature map.
    """

    def __init__(self, patch_size: int, latent_dim: int = 32,
                 base_channels: int = 32, seed: int = 0):
        super().__init__()
        if patch_size < 8:
            raise ValueError(f"patch_size must be >= 8, got {patch_size}")
        self.patch_size = patch_size
        self.latent_dim = latent_dim
        self.base_channels = base_channels
        self.coarse = max(math.ceil(patch_size / 4), 2)

        rng = np.random.default_rng(seed)
        self.project = nn.Linear(latent_dim, base_channels * self.coarse * self.coarse, rng=rng)
        self.block1 = nn.ConvBlock(base_channels, base_channels, 3, rng=rng)
        self.block2 = nn.ConvBlock(base_channels, base_channels // 2, 3, rng=rng)
        self.to_image = nn.Conv2d(base_channels // 2, 1, 1, rng=rng)
        # DCGAN init for the output layer keeps early patches mid-gray.
        self.to_image.weight.data = dcgan_normal(rng, self.to_image.weight.data.shape)

    def sample_latent(self, batch: int, rng: np.random.Generator) -> np.ndarray:
        """Draw z ∼ N(0, 1)."""
        return rng.normal(0.0, 1.0, size=(batch, self.latent_dim)).astype(np.float32)

    def forward(self, z: nn.Tensor) -> nn.Tensor:
        """Map (N, latent_dim) noise to (N, 1, k, k) patches in [0, 1]."""
        if z.shape[-1] != self.latent_dim:
            raise ValueError(f"latent dim {z.shape[-1]} != {self.latent_dim}")
        x = self.project(z)
        x = x.reshape((z.shape[0], self.base_channels, self.coarse, self.coarse))
        x = self.block1(F.upsample_nearest(x, 2))
        x = self.block2(F.upsample_nearest(x, 2))
        x = F.sigmoid(self.to_image(x))
        current = x.shape[-1]
        if current != self.patch_size:
            x = F.interpolate_bilinear(x, (self.patch_size, self.patch_size))
        return x
