"""Plain GAN training on the Four Shapes distribution.

Used in two places: as a standalone sanity harness ("can G learn a star at
all?") and as the warm-up phase of the attack trainer, which continues from
these weights with the attack term of Eq. 1 switched on.

The loop is fault tolerant (DESIGN.md §7): pass a
:class:`~repro.runtime.RuntimeConfig` with a ``checkpoint_path`` to get
periodic atomic snapshots and bit-for-bit resume after a crash; divergence
(non-finite loss, exploding gradients) triggers rollback to the last good
snapshot with a learning-rate cut and a reseeded batch stream instead of
an abort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..nn import Adam, Tensor, clip_grad_norm, no_grad
from ..obs import Run, span_scope
from ..patch.shapes import sample_batch
from ..runtime import (
    DivergenceGuard,
    RuntimeConfig,
    TrainingCheckpoint,
    capture_rng,
    restore_rng,
    run_with_recovery,
)
from ..utils.logging import TrainLog
from ..utils.rng import derive_seed
from .discriminator import PatchDiscriminator
from .generator import PatchGenerator
from .losses import discriminator_loss, generator_adversarial_loss

__all__ = ["GanTrainConfig", "train_gan"]


@dataclass
class GanTrainConfig:
    """Hyper-parameters of plain GAN training.

    The paper uses Adam at lr 1e-4 with batch size 18 (§IV-A); the defaults
    here match, with the step count scaled to the reduced profile.
    """

    steps: int = 200
    batch_size: int = 18
    learning_rate: float = 1e-4
    grad_clip: float = 5.0
    seed: int = 0
    log_every: int = 20
    #: EOT fan-out schedule (DESIGN.md §10): ``None`` keeps the legacy
    #: batched step; ``0`` runs the per-sample engine schedule serially
    #: (the bit-identity oracle); ``n >= 1`` fans it out over ``n``
    #: worker processes with byte-identical results.
    workers: Optional[int] = None


def _recalibrate_batch_norm(generator: PatchGenerator, batch_size: int,
                            seed: int, passes: int = 8) -> None:
    """Re-estimate G's batch-norm running statistics after engine training.

    The parallel-engine schedule runs every generator forward inside the
    workers, so the parent's running-mean/variance buffers never see the
    trained weights. Replay a seeded stream of full-batch training-mode
    forwards (no grad) before switching to eval — deterministic, and
    independent of worker count because it runs entirely in the parent.
    """
    generator.train()
    rng = np.random.default_rng(derive_seed(seed, "bn-recal"))
    with no_grad():
        for _ in range(passes):
            generator(Tensor(generator.sample_latent(batch_size, rng)))


def train_gan(
    generator: PatchGenerator,
    discriminator: PatchDiscriminator,
    shape: str,
    config: Optional[GanTrainConfig] = None,
    log: Optional[TrainLog] = None,
    runtime: Optional[RuntimeConfig] = None,
    obs: Optional[Run] = None,
    perf=None,
    live=None,
) -> TrainLog:
    """Adversarially train G/D on one shape class in place.

    ``obs`` attaches the loop to a run (DESIGN.md §9): a ``gan.train``
    span, loss/grad gauges from the log, and guard/recovery counters all
    land in the run's trace and metrics registry. ``obs=None`` is free.

    ``config.workers`` selects the step schedule (DESIGN.md §10): the
    legacy batched step (``None``), or the per-sample parallel-engine
    schedule — serial oracle at ``0``, ``n`` worker processes otherwise,
    all byte-identical to each other. ``perf`` (a
    :class:`repro.perf.PerfRecorder`) attributes engine stage time.

    ``live`` (a :class:`repro.obs.TrainTelemetry`, DESIGN.md §14) attaches
    the loop to the live sampler under the ``gan`` trainer name — as the
    attack warm-up it rides along as a secondary trainer; standalone it is
    the primary and drives ``train.*``. ``live=None`` is free.
    """
    config = config or GanTrainConfig()
    log = log or TrainLog("gan")
    runtime = runtime or RuntimeConfig()
    if obs is not None:
        log.bind_metrics(obs.metrics, prefix="gan")
    manager = runtime.manager()
    guard = DivergenceGuard(runtime.guard,
                            metrics=obs.metrics if obs is not None else None)
    ledger = None
    if live is not None:
        ledger = live.attach("gan", config.steps)
        live.ensure_probe("train.gan.guard", guard.probe)
        live.register_host_probes()
    rng = np.random.default_rng(config.seed)
    g_optimizer = Adam(generator.parameters(), lr=config.learning_rate)
    d_optimizer = Adam(discriminator.parameters(), lr=config.learning_rate)
    generator.train()
    discriminator.train()

    evaluator = None
    if config.workers is not None:
        from ..parallel import ParallelEvaluator, WorkSpec, shard_indices, tree_reduce
        from .parallel_step import (
            GanWorkerPayload,
            gan_slab_specs,
            gan_worker_init,
            gan_worker_step,
        )

        param_specs, grad_specs = gan_slab_specs(generator, discriminator)
        payload = GanWorkerPayload(
            patch_size=generator.patch_size,
            latent_dim=generator.latent_dim,
            gen_base_channels=generator.base_channels,
            disc_base_channels=discriminator.conv1.weight.data.shape[0],
            shape=shape,
            seed=config.seed,
        )
        evaluator = ParallelEvaluator(
            WorkSpec(init_fn=gan_worker_init, work_fn=gan_worker_step,
                     init_payload=payload, param_specs=param_specs,
                     grad_specs=grad_specs, max_samples=config.batch_size),
            config.workers, obs=obs, perf=perf, name="gan.parallel",
        )
        if live is not None:
            live.ensure_probe("train.gan.pool", evaluator.probe)
    # Extra EOT-stream epoch: bumped on divergence recovery so the retry
    # draws fresh per-sample streams (the engine-mode analogue of the
    # legacy batch-rng reseed). Checkpointed for bit-exact resume.
    eot_epoch = [0]

    def snapshot(step: int) -> TrainingCheckpoint:
        state = {}
        for prefix, source in (
            ("gen.", generator.state_dict()),
            ("disc.", discriminator.state_dict()),
            ("gopt.", g_optimizer.state_dict()),
            ("dopt.", d_optimizer.state_dict()),
        ):
            state.update({prefix + k: np.asarray(v).copy() for k, v in source.items()})
        return TrainingCheckpoint(
            step=step, state=state,
            rngs={"batch": capture_rng(rng)},
            scalars={"lr": g_optimizer.lr, "eot_epoch": float(eot_epoch[0])},
        )

    def restore(checkpoint: TrainingCheckpoint) -> None:
        def part(prefix):
            return {k[len(prefix):]: v for k, v in checkpoint.state.items()
                    if k.startswith(prefix)}

        generator.load_state_dict(part("gen."))
        discriminator.load_state_dict(part("disc."))
        g_optimizer.load_state_dict(part("gopt."))
        d_optimizer.load_state_dict(part("dopt."))
        restore_rng(rng, checkpoint.rngs["batch"])
        eot_epoch[0] = int(checkpoint.scalars.get("eot_epoch", 0))

    start_step = 0
    resumed = manager.load()
    if resumed is not None:
        restore(resumed)
        start_step = resumed.step
        log.event(start_step, "checkpoint_restore", path=manager.path)
    last_good: List[TrainingCheckpoint] = []

    def gather_params() -> dict:
        params = {}
        for prefix, module in (("gen.", generator), ("disc.", discriminator)):
            params.update({prefix + k: v for k, v in module.state_dict().items()})
        return params

    def engine_phase(step: int, phase: str, module, optimizer, prefix: str):
        """One evaluate round + optimizer step; returns (loss, grad_norm)."""
        batch = config.batch_size
        tasks = [
            {"phase": phase, "step": step, "epoch": eot_epoch[0],
             "samples": [(i, i) for i in shard]}
            for shard in shard_indices(batch, max(1, config.workers or 1))
        ]
        grad_keys = [prefix + name for name, _ in module.named_parameters()]
        out = evaluator.evaluate(gather_params(), tasks, batch, grad_keys)
        reduced = evaluator.reduce_grads(out)
        scale = np.float32(1.0 / batch)
        loss = float(tree_reduce(
            [np.float32(s["loss"]) for s in out.scalars]) * scale)
        guard.check(step, **{f"{phase}_loss": loss})
        optimizer.zero_grad()
        for name, param in module.named_parameters():
            param.grad = reduced[prefix + name] * scale
        grad_norm = clip_grad_norm(module.parameters(), config.grad_clip)
        guard.check(step, **{f"{phase}_grad_norm": grad_norm})
        optimizer.step()
        return loss, grad_norm

    def run_steps(start: int) -> None:
        for step in range(start, config.steps):
            if manager.due(step) or not last_good:
                checkpoint = snapshot(step)
                last_good[:] = [checkpoint]
                manager.save(checkpoint)
                if ledger is not None:
                    ledger.checkpoint_saved()

            if evaluator is not None:
                # Engine schedule: D round, then G round against the
                # freshly stepped D re-broadcast through the slab.
                d_loss_value, d_grad_norm = engine_phase(
                    step, "d", discriminator, d_optimizer, "disc.")
                g_loss_value, g_grad_norm = engine_phase(
                    step, "g", generator, g_optimizer, "gen.")
            else:
                real = sample_batch(shape, generator.patch_size,
                                    config.batch_size, rng)
                z = generator.sample_latent(config.batch_size, rng)

                # Discriminator step (fakes detached).
                fake = generator(Tensor(z))
                d_loss = discriminator_loss(
                    discriminator(Tensor(real)), discriminator(fake.detach())
                )
                d_loss_value = float(d_loss.data)
                guard.check(step, d_loss=d_loss_value)
                d_optimizer.zero_grad()
                d_loss.backward()
                d_grad_norm = clip_grad_norm(discriminator.parameters(),
                                             config.grad_clip)
                guard.check(step, d_grad_norm=d_grad_norm)
                d_optimizer.step()

                # Generator step.
                fake = generator(Tensor(z))
                g_loss = generator_adversarial_loss(discriminator(fake))
                g_loss_value = float(g_loss.data)
                guard.check(step, g_loss=g_loss_value)
                g_optimizer.zero_grad()
                g_loss.backward()
                g_grad_norm = clip_grad_norm(generator.parameters(),
                                             config.grad_clip)
                guard.check(step, g_grad_norm=g_grad_norm)
                g_optimizer.step()
            if obs is not None:
                obs.metrics.counter("gan.steps_run").inc()
            if ledger is not None:
                ledger.step(step, loss=g_loss_value, grad_norm=g_grad_norm,
                            d_loss=d_loss_value, d_grad_norm=d_grad_norm,
                            lr=g_optimizer.lr)
                ledger.set_epoch(eot_epoch[0])

            if step % config.log_every == 0 or step == config.steps - 1:
                log.log(step, d_loss=d_loss_value, g_loss=g_loss_value,
                        d_grad_norm=d_grad_norm, g_grad_norm=g_grad_norm,
                        lr=g_optimizer.lr)

    def on_divergence(attempt_index: int, err) -> None:
        checkpoint = last_good[0]
        restore(checkpoint)
        g_optimizer.lr = max(g_optimizer.lr * runtime.guard.lr_decay,
                             runtime.guard.min_lr)
        d_optimizer.lr = max(d_optimizer.lr * runtime.guard.lr_decay,
                             runtime.guard.min_lr)
        restore_rng(rng, capture_rng(np.random.default_rng(
            derive_seed(config.seed, "gan-retry", attempt_index))))
        # Engine mode draws per-sample streams from (seed, epoch, step, i)
        # rather than the batch rng, so retries advance the epoch instead.
        eot_epoch[0] += 1
        recovered = snapshot(checkpoint.step)
        last_good[:] = [recovered]
        manager.save(recovered)
        if ledger is not None:
            ledger.recovery()
            ledger.checkpoint_saved()
            ledger.set_epoch(eot_epoch[0])
        log.event(err.step, "divergence_recovery", reason=err.reason,
                  attempt=attempt_index, lr=g_optimizer.lr,
                  rollback_step=checkpoint.step)

    try:
        with span_scope(obs, "gan.train", shape=shape, steps=config.steps,
                        seed=config.seed, workers=config.workers):
            run_with_recovery(
                lambda attempt: run_steps(start_step if attempt == 0 else last_good[0].step),
                runtime.retry_policy(),
                on_divergence,
            )
    finally:
        # Divergence rollback (or any crash) must not strand worker
        # processes or /dev/shm segments.
        if evaluator is not None:
            evaluator.close()
    if not runtime.keep_checkpoint:
        manager.delete()
    if config.workers is not None:
        _recalibrate_batch_norm(generator, config.batch_size, config.seed)
    if ledger is not None:
        ledger.finish()
    generator.eval()
    discriminator.eval()
    return log
