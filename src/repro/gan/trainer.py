"""Plain GAN training on the Four Shapes distribution.

Used in two places: as a standalone sanity harness ("can G learn a star at
all?") and as the warm-up phase of the attack trainer, which continues from
these weights with the attack term of Eq. 1 switched on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..nn import Adam, Tensor, clip_grad_norm
from ..patch.shapes import sample_batch
from ..utils.logging import TrainLog
from .discriminator import PatchDiscriminator
from .generator import PatchGenerator
from .losses import discriminator_loss, generator_adversarial_loss

__all__ = ["GanTrainConfig", "train_gan"]


@dataclass
class GanTrainConfig:
    """Hyper-parameters of plain GAN training.

    The paper uses Adam at lr 1e-4 with batch size 18 (§IV-A); the defaults
    here match, with the step count scaled to the reduced profile.
    """

    steps: int = 200
    batch_size: int = 18
    learning_rate: float = 1e-4
    grad_clip: float = 5.0
    seed: int = 0
    log_every: int = 20


def train_gan(
    generator: PatchGenerator,
    discriminator: PatchDiscriminator,
    shape: str,
    config: Optional[GanTrainConfig] = None,
    log: Optional[TrainLog] = None,
) -> TrainLog:
    """Adversarially train G/D on one shape class in place."""
    config = config or GanTrainConfig()
    log = log or TrainLog("gan")
    rng = np.random.default_rng(config.seed)
    g_optimizer = Adam(generator.parameters(), lr=config.learning_rate)
    d_optimizer = Adam(discriminator.parameters(), lr=config.learning_rate)
    generator.train()
    discriminator.train()

    for step in range(config.steps):
        real = sample_batch(shape, generator.patch_size, config.batch_size, rng)
        z = generator.sample_latent(config.batch_size, rng)

        # Discriminator step (fakes detached).
        fake = generator(Tensor(z))
        d_loss = discriminator_loss(
            discriminator(Tensor(real)), discriminator(fake.detach())
        )
        d_optimizer.zero_grad()
        d_loss.backward()
        clip_grad_norm(discriminator.parameters(), config.grad_clip)
        d_optimizer.step()

        # Generator step.
        fake = generator(Tensor(z))
        g_loss = generator_adversarial_loss(discriminator(fake))
        g_optimizer.zero_grad()
        g_loss.backward()
        clip_grad_norm(generator.parameters(), config.grad_clip)
        g_optimizer.step()

        if step % config.log_every == 0 or step == config.steps - 1:
            log.log(step, d_loss=float(d_loss.data), g_loss=float(g_loss.data))
    generator.eval()
    discriminator.eval()
    return log
