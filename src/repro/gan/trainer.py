"""Plain GAN training on the Four Shapes distribution.

Used in two places: as a standalone sanity harness ("can G learn a star at
all?") and as the warm-up phase of the attack trainer, which continues from
these weights with the attack term of Eq. 1 switched on.

The loop is fault tolerant (DESIGN.md §7): pass a
:class:`~repro.runtime.RuntimeConfig` with a ``checkpoint_path`` to get
periodic atomic snapshots and bit-for-bit resume after a crash; divergence
(non-finite loss, exploding gradients) triggers rollback to the last good
snapshot with a learning-rate cut and a reseeded batch stream instead of
an abort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..nn import Adam, Tensor, clip_grad_norm
from ..obs import Run, span_scope
from ..patch.shapes import sample_batch
from ..runtime import (
    DivergenceGuard,
    RuntimeConfig,
    TrainingCheckpoint,
    capture_rng,
    restore_rng,
    run_with_recovery,
)
from ..utils.logging import TrainLog
from ..utils.rng import derive_seed
from .discriminator import PatchDiscriminator
from .generator import PatchGenerator
from .losses import discriminator_loss, generator_adversarial_loss

__all__ = ["GanTrainConfig", "train_gan"]


@dataclass
class GanTrainConfig:
    """Hyper-parameters of plain GAN training.

    The paper uses Adam at lr 1e-4 with batch size 18 (§IV-A); the defaults
    here match, with the step count scaled to the reduced profile.
    """

    steps: int = 200
    batch_size: int = 18
    learning_rate: float = 1e-4
    grad_clip: float = 5.0
    seed: int = 0
    log_every: int = 20


def train_gan(
    generator: PatchGenerator,
    discriminator: PatchDiscriminator,
    shape: str,
    config: Optional[GanTrainConfig] = None,
    log: Optional[TrainLog] = None,
    runtime: Optional[RuntimeConfig] = None,
    obs: Optional[Run] = None,
) -> TrainLog:
    """Adversarially train G/D on one shape class in place.

    ``obs`` attaches the loop to a run (DESIGN.md §9): a ``gan.train``
    span, loss/grad gauges from the log, and guard/recovery counters all
    land in the run's trace and metrics registry. ``obs=None`` is free.
    """
    config = config or GanTrainConfig()
    log = log or TrainLog("gan")
    runtime = runtime or RuntimeConfig()
    if obs is not None:
        log.bind_metrics(obs.metrics, prefix="gan")
    manager = runtime.manager()
    guard = DivergenceGuard(runtime.guard,
                            metrics=obs.metrics if obs is not None else None)
    rng = np.random.default_rng(config.seed)
    g_optimizer = Adam(generator.parameters(), lr=config.learning_rate)
    d_optimizer = Adam(discriminator.parameters(), lr=config.learning_rate)
    generator.train()
    discriminator.train()

    def snapshot(step: int) -> TrainingCheckpoint:
        state = {}
        for prefix, source in (
            ("gen.", generator.state_dict()),
            ("disc.", discriminator.state_dict()),
            ("gopt.", g_optimizer.state_dict()),
            ("dopt.", d_optimizer.state_dict()),
        ):
            state.update({prefix + k: np.asarray(v).copy() for k, v in source.items()})
        return TrainingCheckpoint(
            step=step, state=state,
            rngs={"batch": capture_rng(rng)},
            scalars={"lr": g_optimizer.lr},
        )

    def restore(checkpoint: TrainingCheckpoint) -> None:
        def part(prefix):
            return {k[len(prefix):]: v for k, v in checkpoint.state.items()
                    if k.startswith(prefix)}

        generator.load_state_dict(part("gen."))
        discriminator.load_state_dict(part("disc."))
        g_optimizer.load_state_dict(part("gopt."))
        d_optimizer.load_state_dict(part("dopt."))
        restore_rng(rng, checkpoint.rngs["batch"])

    start_step = 0
    resumed = manager.load()
    if resumed is not None:
        restore(resumed)
        start_step = resumed.step
        log.event(start_step, "checkpoint_restore", path=manager.path)
    last_good: List[TrainingCheckpoint] = []

    def run_steps(start: int) -> None:
        for step in range(start, config.steps):
            if manager.due(step) or not last_good:
                checkpoint = snapshot(step)
                last_good[:] = [checkpoint]
                manager.save(checkpoint)

            real = sample_batch(shape, generator.patch_size, config.batch_size, rng)
            z = generator.sample_latent(config.batch_size, rng)

            # Discriminator step (fakes detached).
            fake = generator(Tensor(z))
            d_loss = discriminator_loss(
                discriminator(Tensor(real)), discriminator(fake.detach())
            )
            guard.check(step, d_loss=float(d_loss.data))
            d_optimizer.zero_grad()
            d_loss.backward()
            d_grad_norm = clip_grad_norm(discriminator.parameters(), config.grad_clip)
            guard.check(step, d_grad_norm=d_grad_norm)
            d_optimizer.step()

            # Generator step.
            fake = generator(Tensor(z))
            g_loss = generator_adversarial_loss(discriminator(fake))
            guard.check(step, g_loss=float(g_loss.data))
            g_optimizer.zero_grad()
            g_loss.backward()
            g_grad_norm = clip_grad_norm(generator.parameters(), config.grad_clip)
            guard.check(step, g_grad_norm=g_grad_norm)
            g_optimizer.step()
            if obs is not None:
                obs.metrics.counter("gan.steps_run").inc()

            if step % config.log_every == 0 or step == config.steps - 1:
                log.log(step, d_loss=float(d_loss.data), g_loss=float(g_loss.data),
                        d_grad_norm=d_grad_norm, g_grad_norm=g_grad_norm,
                        lr=g_optimizer.lr)

    def on_divergence(attempt_index: int, err) -> None:
        checkpoint = last_good[0]
        restore(checkpoint)
        g_optimizer.lr = max(g_optimizer.lr * runtime.guard.lr_decay,
                             runtime.guard.min_lr)
        d_optimizer.lr = max(d_optimizer.lr * runtime.guard.lr_decay,
                             runtime.guard.min_lr)
        restore_rng(rng, capture_rng(np.random.default_rng(
            derive_seed(config.seed, "gan-retry", attempt_index))))
        recovered = snapshot(checkpoint.step)
        last_good[:] = [recovered]
        manager.save(recovered)
        log.event(err.step, "divergence_recovery", reason=err.reason,
                  attempt=attempt_index, lr=g_optimizer.lr,
                  rollback_step=checkpoint.step)

    with span_scope(obs, "gan.train", shape=shape, steps=config.steps,
                    seed=config.seed):
        run_with_recovery(
            lambda attempt: run_steps(start_step if attempt == 0 else last_good[0].step),
            runtime.retry_policy(),
            on_divergence,
        )
    if not runtime.keep_checkpoint:
        manager.delete()
    generator.eval()
    discriminator.eval()
    return log
