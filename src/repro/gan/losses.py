"""GAN loss terms (the first two terms of the paper's Eq. 1).

Implemented in the numerically stable logits form. The generator uses the
non-saturating variant (maximize log D(G(z))) as is standard practice; the
discriminator sees real Four-Shapes samples and detached fakes.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor
from ..nn import functional as F

__all__ = ["discriminator_loss", "generator_adversarial_loss"]


def discriminator_loss(real_logits: Tensor, fake_logits: Tensor) -> Tensor:
    """E[log D(v)] + E[log(1 − D(G(z)))], as a minimization objective."""
    real_target = np.ones(real_logits.shape, dtype=np.float32)
    fake_target = np.zeros(fake_logits.shape, dtype=np.float32)
    return (
        F.bce_with_logits(real_logits, real_target)
        + F.bce_with_logits(fake_logits, fake_target)
    )


def generator_adversarial_loss(fake_logits: Tensor) -> Tensor:
    """Non-saturating generator loss: −E[log D(G(z))]."""
    target = np.ones(fake_logits.shape, dtype=np.float32)
    return F.bce_with_logits(fake_logits, target)
