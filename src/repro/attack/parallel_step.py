"""Worker-side step functions of the data-parallel attack trainer.

One EOT *sample* — transform → composite → frozen-detector forward →
L_f → gradient w.r.t. the deployment patch — is an independent unit of
work, which is exactly what ``repro.parallel`` fans out (DESIGN.md §10).
The parent keeps everything that is cheap or stateful (GAN forwards,
optimizer steps, the divergence guard); workers receive the current patch
through the shared parameter slab and return per-sample patch gradients
through the gradient slab.

Determinism contract: the per-sample RNG is derived from
``(seed, eot_epoch, step, sample_index)`` via :func:`sample_stream` —
never from worker identity, task sharding, or arrival order — so the
``workers=0`` in-process oracle and every ``workers=N`` schedule draw
byte-identical transformations.

Everything here must stay module-level importable: the spawn start method
pickles ``attack_worker_init`` / ``attack_worker_step`` by reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..detection.config import TinyYoloConfig
from ..detection.model import TinyYolo
from ..eot.compose import EOTPipeline
from ..nn import Tensor
from ..parallel import ArraySpec
from ..scene.video import TrainingFrame
from ..utils.rng import derive_seed

__all__ = [
    "AttackWorkerPayload",
    "attack_worker_init",
    "attack_worker_step",
    "sample_stream",
    "attack_slab_specs",
]


def sample_stream(seed: int, epoch: int, step: int,
                  sample_index: int) -> np.random.Generator:
    """The one EOT-sample RNG derivation every schedule shares."""
    return np.random.default_rng(
        derive_seed(seed, "eot-sample", epoch, step, sample_index))


@dataclass(frozen=True)
class AttackWorkerPayload:
    """Everything a worker needs once, shipped at pool spawn (not per step).

    ``tricks`` travels as a *sorted tuple*: frozenset iteration order is
    process-dependent (string hash randomization), and the payload must
    hash/compare identically in every worker.
    """

    detector_config: TinyYoloConfig
    detector_state: Dict[str, np.ndarray]
    frames: Tuple[TrainingFrame, ...]
    tricks: Tuple[str, ...]
    target_label: int
    objectness_weight: float
    targeted: bool
    capture_probability: float
    seed: int


@dataclass
class _AttackContext:
    model: TinyYolo
    pipeline: EOTPipeline
    payload: AttackWorkerPayload


def attack_worker_init(payload: AttackWorkerPayload) -> _AttackContext:
    """Build the frozen detector + EOT pipeline once per worker process."""
    model = TinyYolo(payload.detector_config)
    model.load_state_dict(payload.detector_state)
    model.eval()
    # Frozen victim, same as the parent: gradients flow through, not into.
    for param in model.parameters():
        param.requires_grad = False
    pipeline = EOTPipeline.with_tricks(frozenset(payload.tricks))
    return _AttackContext(model=model, pipeline=pipeline, payload=payload)


def attack_worker_step(ctx: _AttackContext, params: Dict[str, np.ndarray],
                       task: dict) -> List[tuple]:
    """Evaluate one task's EOT samples against the current patch.

    ``task`` carries ``{"step", "epoch", "samples": [(sample_index,
    frame_index), ...]}``; ``params["patch"]`` is the step's deployment
    patch from the parameter slab. Returns ``(sample_index,
    {"patch": grad}, {"loss": value})`` rows.
    """
    from ..eot.transforms import print_response
    from .trainer import _composite_one, attack_loss

    payload = ctx.payload
    rows: List[tuple] = []
    for sample_index, frame_index in task["samples"]:
        rng = sample_stream(payload.seed, task["epoch"], task["step"], sample_index)
        patch = Tensor(np.array(params["patch"], copy=True), requires_grad=True)
        printed = print_response(patch)
        frame = payload.frames[frame_index]
        image = _composite_one(frame, patch, printed, ctx.pipeline, rng,
                               payload.capture_probability)
        outputs = ctx.model(image)
        loss = attack_loss(outputs, [frame.target_box_xywh], ctx.model,
                           payload.target_label, payload.objectness_weight,
                           targeted=payload.targeted)
        loss.backward()
        rows.append((sample_index,
                     {"patch": np.ascontiguousarray(patch.grad, dtype=np.float32)},
                     {"loss": float(loss.data)}))
    return rows


def attack_slab_specs(k: int) -> Tuple[Tuple[ArraySpec, ...], Tuple[ArraySpec, ...]]:
    """(param_specs, grad_specs) for the attack engine's shared slabs."""
    patch = ArraySpec("patch", (1, 1, k, k))
    return (patch,), (patch,)
