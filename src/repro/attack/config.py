"""Attack configuration.

Bundles every hyper-parameter of the paper's attack (§IV-A and the
ablations of §IV-C): patch count N, patch size k, shape prior, the EOT
trick subset, the attack weight α, and whether training batches contain
runs of 3 consecutive frames (the paper's dynamic-attack ingredient).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple



from ..eot.sampler import ALL_TRICKS, tricks_from_numbers
from ..patch.shapes import SHAPE_NAMES

__all__ = ["AttackConfig", "PAPER_TRICKS"]

#: The paper's chosen EOT subset: resize, rotation, gamma, perspective.
PAPER_TRICKS: FrozenSet[str] = tricks_from_numbers((1, 2, 4, 5))


@dataclass(frozen=True)
class AttackConfig:
    """Hyper-parameters of one decal attack.

    Attributes mirror the paper's notation: ``n_patches`` is N, ``k`` the
    patch side in pixels, ``alpha`` the attack-loss weight of Eq. 1,
    ``consecutive`` the 3-consecutive-frames batch construction. The paper's
    full-scale run uses α=0.5, lr=1e-4 and 800 epochs on a V100; the
    defaults here compensate for the ~100-step reduced CPU profile with a
    larger α (5.0 — the measured threshold at which the attack term
    dominates the shape prior enough to transfer physically) and learning
    rate (DESIGN.md §5). ``target_class`` defaults to
    'word': the paper does not name its target class t, and monochrome
    road decals laid beside a lane arrow most naturally push the detector
    toward the painted-text class, giving the targeted attack traction at
    reduced scale.
    """

    n_patches: int = 4
    k: int = 60
    shape: str = "star"
    alpha: float = 5.0
    tricks: FrozenSet[str] = PAPER_TRICKS
    consecutive: bool = True
    group: int = 3                      # consecutive frames per run
    target_class: str = "word"          # class t the detector should output
    victim_class: str = "mark"          # object the decals surround
    #: Targeted mode (paper default) drives the detector toward
    #: ``target_class``; untargeted mode is the disappearance variant
    #: (extension, DESIGN.md §6): suppress the victim's objectness and
    #: class score so the object is not detected at all.
    targeted: bool = True
    #: When non-empty, training frames draw their scene style from these
    #: seeds, producing a *universal* decal that works across scenes —
    #: an extension toward the paper's future-work robustness goal.
    universal_styles: Tuple[int, ...] = ()
    constant_total_area: bool = False   # Table III protocol
    steps: int = 120
    warmup_steps: int = 80
    batch_frames: int = 6
    gan_batch: int = 18
    learning_rate: float = 1e-3
    latent_dim: int = 32
    frame_pool: int = 48
    objectness_weight: float = 0.3
    #: Fraction of training composites passed through the differentiable
    #: capture-EOT (illumination/shadow/blur/noise) — the expectation over
    #: capture conditions that makes decals survive the physical camera.
    capture_probability: float = 0.5
    grad_clip: float = 5.0
    seed: int = 0
    #: EOT fan-out schedule (DESIGN.md §10). ``None`` keeps the legacy
    #: batched step. ``0`` runs the per-sample parallel-engine schedule
    #: serially in-process (the bit-identity oracle); ``n >= 1`` runs the
    #: same schedule across ``n`` worker processes. Every ``workers >= 0``
    #: value yields byte-identical parameter updates — the worker count is
    #: deployment detail, not configuration, which is why :meth:`cache_key`
    #: records only the schedule, never ``n``.
    workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 0:
            raise ValueError("workers must be None (legacy) or >= 0")
        self._validate_attack()

    def _validate_attack(self) -> None:
        if self.shape not in SHAPE_NAMES:
            raise ValueError(f"shape must be one of {SHAPE_NAMES}, got {self.shape!r}")
        if self.n_patches < 1:
            raise ValueError("n_patches must be >= 1")
        if self.k < 8:
            raise ValueError("k must be >= 8")
        if not 0 <= self.alpha:
            raise ValueError("alpha must be non-negative")
        unknown = set(self.tricks) - ALL_TRICKS
        if unknown:
            raise ValueError(f"unknown tricks {sorted(unknown)}")
        if self.consecutive and self.batch_frames % self.group != 0:
            raise ValueError(
                f"batch_frames ({self.batch_frames}) must be divisible by the "
                f"consecutive group size ({self.group})"
            )
        if self.target_class == self.victim_class:
            raise ValueError("target and victim class must differ")

    def cache_key(self) -> str:
        """A stable string identifying this configuration (for artifact caching)."""
        tricks = ",".join(sorted(self.tricks))
        universal = f"_u{len(self.universal_styles)}" if self.universal_styles else ""
        return (
            f"N{self.n_patches}_k{self.k}_{self.shape}_a{self.alpha}"
            f"_t[{tricks}]_c{int(self.consecutive)}_{self.victim_class}2{self.target_class}"
            f"_tg{int(self.targeted)}{universal}"
            f"_s{self.steps}w{self.warmup_steps}b{self.batch_frames}"
            f"_cta{int(self.constant_total_area)}_seed{self.seed}"
            # The parallel-engine schedule changes the EOT sampling/reduction
            # math (per-sample streams, tree reduce), so artifacts are not
            # interchangeable with legacy ones — but the worker *count* is
            # not part of the identity: every workers >= 0 is byte-equal.
            f"{'_par' if self.workers is not None else ''}"
        )
