"""Persistence for trained attack artifacts.

Attacks are the expensive step of the pipeline; benchmarks cache results on
disk keyed by :meth:`AttackConfig.cache_key` so re-running a table only
re-trains what changed.

Artifacts write through :func:`repro.nn.serialization.save_state`:
atomically (tmp + ``os.replace``) and with an embedded SHA-256 digest, so
a partially written or bit-rotted ``.npz`` raises
:class:`~repro.nn.serialization.CheckpointError` at load time instead of
silently poisoning the :class:`~repro.experiments.Workbench` cache.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Optional

import numpy as np

from ..nn.serialization import CheckpointError, load_state, save_state
from ..utils.logging import TrainLog
from .baseline_sava import SavaBaselineResult
from .config import AttackConfig
from .trainer import AttackResult

__all__ = ["save_attack", "load_attack", "save_baseline", "load_baseline", "cached_path"]


def _config_to_json(config: AttackConfig) -> str:
    payload = asdict(config)
    payload["tricks"] = sorted(payload["tricks"])
    return json.dumps(payload)


def _config_from_json(payload: str) -> AttackConfig:
    data = json.loads(payload)
    data["tricks"] = frozenset(data["tricks"])
    if "universal_styles" in data:
        data["universal_styles"] = tuple(data["universal_styles"])
    return AttackConfig(**data)


def cached_path(directory: str, config: AttackConfig, kind: str = "attack") -> str:
    """Deterministic artifact path for a configuration."""
    return os.path.join(directory, f"{kind}_{config.cache_key()}.npz")


def _require(archive: dict, key: str, path: str) -> np.ndarray:
    try:
        return archive[key]
    except KeyError as err:
        raise CheckpointError(f"artifact {path!r} is missing entry {key!r}") from err


def save_attack(result: AttackResult, path: str) -> None:
    save_state(path, {
        "patch": result.patch,
        "alpha": result.alpha,
        "world_size_m": np.float64(result.world_size_m),
        "config_json": np.str_(_config_to_json(result.config)),
    })


def load_attack(path: str) -> AttackResult:
    """Load a cached attack; raises :class:`CheckpointError` if corrupt."""
    archive = load_state(path)
    return AttackResult(
        patch=_require(archive, "patch", path),
        alpha=_require(archive, "alpha", path),
        config=_config_from_json(str(_require(archive, "config_json", path))),
        history=TrainLog("attack(loaded)"),
        world_size_m=float(_require(archive, "world_size_m", path)),
    )


def save_baseline(result: SavaBaselineResult, path: str) -> None:
    save_state(path, {
        "patch_rgb": result.patch_rgb,
        "world_size_m": np.float64(result.world_size_m),
        "config_json": np.str_(_config_to_json(result.config)),
    })


def load_baseline(path: str) -> SavaBaselineResult:
    """Load a cached baseline; raises :class:`CheckpointError` if corrupt."""
    archive = load_state(path)
    return SavaBaselineResult(
        patch_rgb=_require(archive, "patch_rgb", path),
        config=_config_from_json(str(_require(archive, "config_json", path))),
        history=TrainLog("sava(loaded)"),
        world_size_m=float(_require(archive, "world_size_m", path)),
    )
