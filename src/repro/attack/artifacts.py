"""Persistence for trained attack artifacts.

Attacks are the expensive step of the pipeline; benchmarks cache results on
disk keyed by :meth:`AttackConfig.cache_key` so re-running a table only
re-trains what changed.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Optional

import numpy as np

from ..utils.logging import TrainLog
from .baseline_sava import SavaBaselineResult
from .config import AttackConfig
from .trainer import AttackResult

__all__ = ["save_attack", "load_attack", "save_baseline", "load_baseline", "cached_path"]


def _config_to_json(config: AttackConfig) -> str:
    payload = asdict(config)
    payload["tricks"] = sorted(payload["tricks"])
    return json.dumps(payload)


def _config_from_json(payload: str) -> AttackConfig:
    data = json.loads(payload)
    data["tricks"] = frozenset(data["tricks"])
    if "universal_styles" in data:
        data["universal_styles"] = tuple(data["universal_styles"])
    return AttackConfig(**data)


def cached_path(directory: str, config: AttackConfig, kind: str = "attack") -> str:
    """Deterministic artifact path for a configuration."""
    return os.path.join(directory, f"{kind}_{config.cache_key()}.npz")


def save_attack(result: AttackResult, path: str) -> None:
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez(
        path,
        patch=result.patch,
        alpha=result.alpha,
        world_size_m=np.float64(result.world_size_m),
        config_json=np.str_(_config_to_json(result.config)),
    )


def load_attack(path: str) -> AttackResult:
    with np.load(path) as archive:
        return AttackResult(
            patch=archive["patch"],
            alpha=archive["alpha"],
            config=_config_from_json(str(archive["config_json"])),
            history=TrainLog("attack(loaded)"),
            world_size_m=float(archive["world_size_m"]),
        )


def save_baseline(result: SavaBaselineResult, path: str) -> None:
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez(
        path,
        patch_rgb=result.patch_rgb,
        world_size_m=np.float64(result.world_size_m),
        config_json=np.str_(_config_to_json(result.config)),
    )


def load_baseline(path: str) -> SavaBaselineResult:
    with np.load(path) as archive:
        return SavaBaselineResult(
            patch_rgb=archive["patch_rgb"],
            config=_config_from_json(str(archive["config_json"])),
            history=TrainLog("sava(loaded)"),
            world_size_m=float(archive["world_size_m"]),
        )
