"""Re-implementation of the Sava et al. [34] baseline.

The paper compares against "Assessing the impact of transformations on
physical adversarial attacks" (AISec '22), re-implemented because no
official code exists. Faithful differences from our attack, exactly the
ones the paper highlights:

* the patch is a **full-color, free-form square** (3 channels, no shape
  prior, no GAN) optimized directly in pixel space through a sigmoid
  parameterization;
* EOT is used (the baseline's own contribution is studying transformations)
  — all five tricks are enabled to make it as strong as possible digitally;
* batches are **independent single frames** — no consecutive-frame runs.

Because the patch is saturated-color, the printer gamut model distorts it
heavily at physical deployment, reproducing the paper's Table I finding
that [34] collapses in the real world.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..detection.config import CLASS_NAMES
from ..detection.model import TinyYolo
from ..eot.compose import EOTPipeline
from ..eot.sampler import ALL_TRICKS
from ..nn import Adam, Parameter, Tensor, clip_grad_norm, concatenate
from ..nn import functional as F
from ..patch.apply import apply_patches
from ..patch.placement import patch_world_size, placement_offsets
from ..scene.physical import print_patch
from ..scene.video import AttackScenario, DeployedDecals, sample_training_frames
from ..utils.logging import TrainLog
from ..utils.rng import derive_seed
from .config import AttackConfig
from .trainer import attack_loss

__all__ = ["SavaBaselineResult", "train_sava_baseline"]


@dataclass
class SavaBaselineResult:
    """The trained colored baseline patch."""

    patch_rgb: np.ndarray   # (3, k, k) in [0, 1]
    config: AttackConfig
    history: TrainLog
    world_size_m: float

    def deploy(self, physical: bool = False,
               rng: Optional[np.random.Generator] = None) -> DeployedDecals:
        rgb = self.patch_rgb
        if physical:
            if rng is None:
                rng = np.random.default_rng(derive_seed(self.config.seed, "print-sava"))
            rgb = print_patch(rgb, rng)
        alpha = np.ones(rgb.shape[1:], dtype=np.float32)
        return DeployedDecals(
            patch_rgb=rgb,
            alpha=alpha,
            world_size_m=self.world_size_m,
            offsets=placement_offsets(self.config.n_patches),
        )


def train_sava_baseline(
    model: TinyYolo,
    scenario: AttackScenario,
    config: Optional[AttackConfig] = None,
    log: Optional[TrainLog] = None,
) -> SavaBaselineResult:
    """Optimize a colored EOT patch against a frozen detector."""
    config = config or AttackConfig(consecutive=False, tricks=frozenset(ALL_TRICKS))
    log = log or TrainLog("sava")
    target_label = CLASS_NAMES.index(config.target_class)
    rng = np.random.default_rng(derive_seed(config.seed, "sava"))

    model.eval()
    frozen_state = [p.requires_grad for p in model.parameters()]
    for param in model.parameters():
        param.requires_grad = False
    try:
        # Unconstrained parameterization: patch = σ(theta) stays in [0, 1].
        theta = Parameter(rng.normal(0.0, 1.0, size=(1, 3, config.k, config.k)))
        optimizer = Adam([theta], lr=5e-2)
        pipeline = EOTPipeline.with_tricks(config.tricks)

        world_size = patch_world_size(
            config.k,
            n_patches=config.n_patches,
            constant_total_area=config.constant_total_area,
        )
        offsets = placement_offsets(config.n_patches)
        pool = sample_training_frames(
            scenario,
            np.random.default_rng(derive_seed(config.seed, "sava-frames")),
            config.frame_pool,
            offsets,
            world_size,
            consecutive=False,  # the baseline trains on independent frames
        )

        full_alpha = Tensor(np.ones((1, 1, config.k, config.k), dtype=np.float32))
        for step in range(config.steps):
            indices = rng.choice(len(pool), size=config.batch_frames, replace=False)
            frames = [pool[i] for i in indices]
            patch = F.sigmoid(theta)
            composited = []
            boxes = []
            for frame in frames:
                patches = []
                alphas = []
                for _ in frame.placements:
                    transformed, alpha_t, _ = pipeline.sample_and_apply(
                        patch, rng, alpha=full_alpha
                    )
                    patches.append(transformed)
                    alphas.append(alpha_t)
                composited.append(
                    apply_patches(frame.image, patches, alphas, frame.placements)
                )
                boxes.append(frame.target_box_xywh)
            images = concatenate(composited, axis=0)
            outputs = model(images)
            loss = attack_loss(outputs, boxes, model, target_label,
                               config.objectness_weight,
                               targeted=config.targeted)
            if not np.isfinite(loss.data):
                raise FloatingPointError(f"non-finite baseline loss at step {step}")
            optimizer.zero_grad()
            loss.backward()
            clip_grad_norm([theta], config.grad_clip)
            optimizer.step()
            if step % 10 == 0 or step == config.steps - 1:
                log.log(step, attack=float(loss.data))

        final = 1.0 / (1.0 + np.exp(-theta.data[0]))
        return SavaBaselineResult(
            patch_rgb=final.astype(np.float32),
            config=config,
            history=log,
            world_size_m=world_size,
        )
    finally:
        for param, state in zip(model.parameters(), frozen_state):
            param.requires_grad = state
