"""Joint GAN + attack training (the paper's Eq. 1).

The trainer alternates:

* a **discriminator** step on real Four-Shapes samples vs. detached fakes
  (first two terms of Eq. 1), and
* a **generator** step whose loss is the adversarial term plus
  ``α · L_f`` (Eq. 2): the deployment patch is EOT-transformed per decal
  instance, background-removed, composited into a batch of training frames
  — runs of 3 consecutive approach frames when ``consecutive`` is on — and
  pushed through the frozen detector; ``L_f`` is the cross-entropy of the
  class logits at the victim object's cells toward the target class, plus a
  small objectness term that keeps the object *detected* (just wrongly).

Training frames come from :func:`repro.scene.video.sample_training_frames`
— the digital stage of the paper's pipeline. Physical robustness is
trained in, not hoped for: the patch passes through a differentiable
printer response (printability by design, §II-B) and a fraction of
composites pass through a differentiable reparameterization of the capture
model (:func:`_capture_augment`), so the decal that ships is the decal the
camera will actually see. The full stochastic physical stage (printing +
capture degradation) is then applied at evaluation time in
`repro.eval.protocol`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..detection.config import CLASS_NAMES
from ..detection.model import TinyYolo
from ..eot.compose import EOTPipeline
from ..eot.sampler import EOTSampler
from ..gan.discriminator import PatchDiscriminator
from ..gan.generator import PatchGenerator
from ..gan.losses import discriminator_loss, generator_adversarial_loss
from ..gan.trainer import GanTrainConfig, train_gan
from ..nn import Adam, Tensor, clip_grad_norm, concatenate
from ..nn import functional as F
from ..obs import Run, span_scope
from ..patch.apply import apply_patches
from ..patch.mask import hard_background_mask, soft_background_mask
from ..patch.placement import patch_world_size, placement_offsets
from ..patch.shapes import sample_batch
from ..runtime import (
    DivergenceGuard,
    RuntimeConfig,
    TrainingCheckpoint,
    capture_rng,
    restore_rng,
    run_with_recovery,
)
from ..scene.physical import print_patch
from ..scene.video import AttackScenario, DeployedDecals, TrainingFrame, sample_training_frames
from ..utils.logging import TrainLog
from ..utils.rng import derive_seed
from .config import AttackConfig

__all__ = ["AttackResult", "train_patch_attack", "attack_loss"]


@dataclass
class AttackResult:
    """A trained decal attack ready for deployment."""

    patch: np.ndarray           # (1, k, k) monochrome appearance in [0, 1]
    alpha: np.ndarray           # (k, k) hard cut-out mask
    config: AttackConfig
    history: TrainLog
    world_size_m: float

    def deploy(self, physical: bool = False,
               rng: Optional[np.random.Generator] = None) -> DeployedDecals:
        """Materialize the decal set for scene rendering.

        With ``physical=True`` the patch first passes through the printer
        model — the digital→physical gap of the paper's §IV-B.
        """
        rgb = np.repeat(self.patch, 3, axis=0)
        if physical:
            if rng is None:
                rng = np.random.default_rng(derive_seed(self.config.seed, "print"))
            rgb = print_patch(rgb, rng)
        return DeployedDecals(
            patch_rgb=rgb,
            alpha=self.alpha,
            world_size_m=self.world_size_m,
            offsets=placement_offsets(self.config.n_patches),
        )


def attack_loss(
    outputs: Tuple[Tensor, Tensor],
    target_boxes: Sequence[np.ndarray],
    model: TinyYolo,
    target_label: int,
    objectness_weight: float,
    targeted: bool = True,
) -> Tensor:
    """The L_f of Eq. 2 for a batch.

    Targeted mode (paper): gathers class logits from both heads at the grid
    cells containing each victim box center (all anchors), applies softmax
    cross-entropy toward the target class, and adds a BCE term that pulls
    objectness up so the detector keeps *seeing* an object there.

    Untargeted mode (disappearance extension): pushes objectness at those
    cells toward zero instead, hiding the victim from the detector.
    """
    config = model.config
    per_anchor = 5 + config.num_classes
    num_anchors = config.anchors_per_head
    total: Tensor = Tensor(0.0)
    terms = 0
    for raw, stride in zip(outputs, config.strides):
        n = raw.shape[0]
        s = config.input_size // stride
        grid = raw.reshape((n, num_anchors, per_anchor, s, s)).transpose((0, 1, 3, 4, 2))
        batch_idx: List[int] = []
        anchor_idx: List[int] = []
        row_idx: List[int] = []
        col_idx: List[int] = []
        for i, box in enumerate(target_boxes):
            cx, cy = float(box[0]), float(box[1])
            col = min(int(cx / stride), s - 1)
            row = min(int(cy / stride), s - 1)
            for a in range(num_anchors):
                batch_idx.append(i)
                anchor_idx.append(a)
                row_idx.append(row)
                col_idx.append(col)
        index = (
            np.asarray(batch_idx),
            np.asarray(anchor_idx),
            np.asarray(row_idx),
            np.asarray(col_idx),
        )
        cells = grid[index]             # (P, 5+C)
        class_logits = cells[:, 5:]
        obj_logits = cells[:, 4]
        if targeted:
            targets = np.full(len(batch_idx), target_label, dtype=np.int64)
            class_term = F.cross_entropy(class_logits, targets)
            obj_term = F.bce_with_logits(
                obj_logits, np.ones(len(batch_idx), dtype=np.float32)
            )
            total = total + class_term + objectness_weight * obj_term
        else:
            # Disappearance: drive objectness to zero at the victim cells.
            obj_term = F.bce_with_logits(
                obj_logits, np.zeros(len(batch_idx), dtype=np.float32)
            )
            total = total + obj_term
        terms += 1
    return total * (1.0 / max(terms, 1))


def _capture_augment(image: Tensor, rng: np.random.Generator) -> Tensor:
    """EOT over the capture model (differentiable w.r.t. the image).

    Samples the same distortions :func:`repro.scene.physical.camera_degrade`
    applies at evaluation time — illumination field, shadow band, blur,
    sensor noise — but as fixed numpy constants multiplied/added onto the
    composited tensor, so gradients still reach the patch. This is the
    reparameterized-EOT trick: expectation over capture conditions, not
    just over patch transforms.
    """
    from ..eot.transforms import blur3
    from ..scene.physical import CaptureModel, _illumination_field, _shadow_band

    model = CaptureModel()
    _, _, h, w = image.shape
    field = _illumination_field((h, w), rng, model.illumination_amplitude)
    out = image * field[None, None]
    if rng.random() < model.shadow_probability:
        out = out * _shadow_band((h, w), rng, model.shadow_strength)[None, None]
    if rng.random() < 0.7:
        out = blur3(out)
    noise = rng.normal(0.0, model.noise_sigma, size=(1, 3, h, w)).astype(np.float32)
    return (out + noise).clip(0.0, 1.0)


def _composite_one(
    frame: TrainingFrame,
    patch: Tensor,
    printed: Tensor,
    pipeline: EOTPipeline,
    rng: np.random.Generator,
    capture_probability: float,
) -> Tensor:
    """EOT-transform and paste the patch into one frame (differentiable).

    One decal instance is sampled per placement (alpha from the *pre-print*
    patch so gamut compression cannot erase the silhouette), then the
    composite optionally passes through the differentiable capture-EOT.
    The draw order — per-placement transform samples, then one capture
    coin — is the unit both schedules share: the legacy batched step walks
    one rng across frames, the parallel engine gives every frame its own
    derived stream (DESIGN.md §10).
    """
    patches = []
    alphas = []
    for _ in frame.placements:
        transformed, alpha, _ = pipeline.sample_and_apply(
            printed, rng, alpha=soft_background_mask(patch)
        )
        patches.append(transformed)
        alphas.append(alpha)
    image = apply_patches(frame.image, patches, alphas, frame.placements)
    if rng.random() < capture_probability:
        image = _capture_augment(image, rng)
    return image


def _composite_batch(
    frames: Sequence[TrainingFrame],
    patch: Tensor,
    pipeline: EOTPipeline,
    rng: np.random.Generator,
    capture_probability: float = 0.5,
) -> Tuple[Tensor, List[np.ndarray]]:
    """EOT-transform and paste the patch into every frame (differentiable).

    The patch first passes through the differentiable printer response
    (printability-by-design, §II-B) once — the composites are stacked into
    one batch and the trainer runs a *single* batched detector forward
    over them (the PR 2 hot path), not one forward per frame.
    A ``capture_probability`` fraction of composited frames also pass
    through the differentiable capture-EOT so the decal works on what the
    camera actually records, not on ideal pixels.
    """
    from ..eot.transforms import print_response

    printed = print_response(patch)
    composited = [
        _composite_one(frame, patch, printed, pipeline, rng, capture_probability)
        for frame in frames
    ]
    boxes = [frame.target_box_xywh for frame in frames]
    return concatenate(composited, axis=0), boxes


def _batch_frame_indices(
    pool_size: int,
    config: AttackConfig,
    rng: np.random.Generator,
) -> List[int]:
    """Draw the frame indices of one training batch.

    Whole consecutive runs when configured (the paper's dynamic-attack
    ingredient); clamped to the pool so a small pool yields a smaller
    batch instead of crashing ``rng.choice`` with an impossible
    no-replacement request. Split from :func:`_batch_frames` so the
    parallel engine can draw indices (one ``rng.choice`` call, identical
    stream consumption) and ship them to workers without the frames.
    """
    if pool_size == 0:
        raise ValueError("training-frame pool is empty")
    if config.consecutive:
        runs = pool_size // config.group
        if runs == 0:
            raise ValueError(
                f"pool of {pool_size} frames holds no complete run of "
                f"{config.group} consecutive frames"
            )
        chosen = rng.choice(
            runs, size=min(config.batch_frames // config.group, runs), replace=False
        )
        indices: List[int] = []
        for run in chosen:
            indices.extend(range(run * config.group, (run + 1) * config.group))
        return indices
    chosen = rng.choice(
        pool_size, size=min(config.batch_frames, pool_size), replace=False
    )
    return [int(i) for i in chosen]


def _batch_frames(
    pool: Sequence[TrainingFrame],
    config: AttackConfig,
    rng: np.random.Generator,
) -> List[TrainingFrame]:
    """Materialize one training batch from the pre-rendered frame pool.

    The batch feeds a single batched detector forward (see
    :func:`_composite_batch`), not a per-frame loop.
    """
    return [pool[i] for i in _batch_frame_indices(len(pool), config, rng)]


def train_patch_attack(
    model: TinyYolo,
    scenario: AttackScenario,
    config: Optional[AttackConfig] = None,
    log: Optional[TrainLog] = None,
    runtime: Optional[RuntimeConfig] = None,
    obs: Optional[Run] = None,
    perf=None,
    live=None,
) -> AttackResult:
    """Train the paper's decal attack against a frozen detector.

    Returns the deployment-ready :class:`AttackResult`. The detector's
    parameters are not modified (white-box access means gradients flow
    *through* it, not *into* it).

    ``runtime`` controls fault tolerance (DESIGN.md §7): with a
    ``checkpoint_path`` the loop snapshots generator/discriminator/
    optimizer/RNG state periodically and resumes bit-for-bit from the last
    snapshot after a crash; with or without one, a non-finite loss or an
    exploding gradient rolls the run back to the last good snapshot, cuts
    the learning rate, reseeds the batch stream and retries (bounded),
    instead of aborting with ``FloatingPointError``.

    ``obs`` attaches the whole attack to a run (DESIGN.md §9): an
    ``attack.train`` span with warm-up / frame-pool / step-loop children,
    loss gauges from the log, and guard/recovery counters, so one trace
    covers GAN warm-up through the final patch. ``obs=None`` is free.

    ``config.workers`` selects the EOT fan-out schedule (DESIGN.md §10):
    ``None`` keeps the legacy batched generator step; ``0`` runs the
    per-sample parallel-engine schedule serially in-process (the
    bit-identity oracle); ``n >= 1`` fans the EOT samples out over ``n``
    worker processes — every ``workers >= 0`` value produces byte-equal
    parameter updates. ``perf`` (a :class:`repro.perf.PerfRecorder`)
    attributes engine stage time (broadcast/dispatch/collect/reduce).

    ``live`` (a :class:`repro.obs.TrainTelemetry`, DESIGN.md §14) attaches
    the step loop to the live sampler: steps/s, loss and grad-norm gauges,
    checkpoint age, divergence-guard state, and worker-pool health become
    pollable mid-run and land in ``train_live.json`` every tick. The
    trainer only *registers* probes and updates its ledger — the caller
    owns ``live.start()``/``stop()``. ``live=None`` is free, and the
    ledger writes are plain float stores: a telemetered run is bit-identical
    to an untelemetered one.
    """
    config = config or AttackConfig()
    log = log or TrainLog("attack")
    if obs is not None:
        log.bind_metrics(obs.metrics, prefix="attack")
    if config.target_class not in CLASS_NAMES:
        raise ValueError(f"unknown target class {config.target_class!r}")
    target_label = CLASS_NAMES.index(config.target_class)
    if scenario.target_class != config.victim_class:
        raise ValueError(
            f"scenario target {scenario.target_class!r} != config victim "
            f"{config.victim_class!r}"
        )

    rng = np.random.default_rng(derive_seed(config.seed, "attack"))
    model.eval()
    # Freeze the victim: gradients flow *through* the detector (white-box
    # access) but never *into* it. Restored on exit so a caller can keep
    # fine-tuning the detector afterwards.
    detector_params = model.parameters()
    frozen_state = [p.requires_grad for p in detector_params]
    for param in detector_params:
        param.requires_grad = False
    try:
        with span_scope(obs, "attack.train", steps=config.steps,
                        seed=config.seed, target=config.target_class,
                        n_patches=config.n_patches, workers=config.workers):
            return _train_with_frozen_detector(
                model, scenario, config, log, rng, target_label, runtime, obs,
                perf, live,
            )
    finally:
        for param, state in zip(detector_params, frozen_state):
            param.requires_grad = state


def _train_with_frozen_detector(
    model: TinyYolo,
    scenario: AttackScenario,
    config: AttackConfig,
    log: TrainLog,
    rng: np.random.Generator,
    target_label: int,
    runtime: Optional[RuntimeConfig] = None,
    obs: Optional[Run] = None,
    perf=None,
    live=None,
) -> AttackResult:
    runtime = runtime or RuntimeConfig()
    manager = runtime.manager()
    guard = DivergenceGuard(runtime.guard,
                            metrics=obs.metrics if obs is not None else None)
    ledger = None
    if live is not None:
        ledger = live.attach("attack", config.steps)
        live.ensure_probe("train.attack.guard", guard.probe)
        live.register_host_probes()
    generator = PatchGenerator(config.k, latent_dim=config.latent_dim,
                               seed=derive_seed(config.seed, "gen"))
    discriminator = PatchDiscriminator(config.k, seed=derive_seed(config.seed, "disc"))

    # A persisted snapshot supersedes warm-up: it already contains the
    # post-warm-up (and partially attacked) weights.
    resumed = manager.load()

    # Phase 1: warm-up so G starts on the shape manifold.
    if resumed is None and config.warmup_steps > 0:
        with span_scope(obs, "attack.warmup", steps=config.warmup_steps):
            train_gan(
                generator,
                discriminator,
                config.shape,
                GanTrainConfig(
                    steps=config.warmup_steps,
                    batch_size=config.gan_batch,
                    learning_rate=config.learning_rate,
                    seed=derive_seed(config.seed, "warmup"),
                    workers=config.workers,
                ),
                obs=obs,
                perf=perf,
                live=live,
            )

    # Pre-render the training-frame pool (the paper's scene photographs).
    world_size = patch_world_size(
        config.k,
        n_patches=config.n_patches,
        constant_total_area=config.constant_total_area,
    )
    offsets = placement_offsets(config.n_patches)
    with span_scope(obs, "attack.frame_pool", frames=config.frame_pool):
        pool = sample_training_frames(
            scenario,
            np.random.default_rng(derive_seed(config.seed, "frames")),
            config.frame_pool,
            offsets,
            world_size,
            consecutive=config.consecutive,
            group=config.group,
            style_seeds=config.universal_styles or None,
        )

    pipeline = EOTPipeline.with_tricks(config.tricks)
    g_optimizer = Adam(generator.parameters(), lr=config.learning_rate)
    d_optimizer = Adam(discriminator.parameters(), lr=config.learning_rate)
    generator.train()
    discriminator.train()

    # The deployment latent: the attack term always optimizes this patch.
    z_deploy = generator.sample_latent(1, np.random.default_rng(derive_seed(config.seed, "z")))

    evaluator = None
    if config.workers is not None:
        from ..parallel import ParallelEvaluator, WorkSpec
        from .parallel_step import (
            AttackWorkerPayload,
            attack_slab_specs,
            attack_worker_init,
            attack_worker_step,
        )

        param_specs, grad_specs = attack_slab_specs(config.k)
        payload = AttackWorkerPayload(
            detector_config=model.config,
            detector_state=model.state_dict(),
            frames=tuple(pool),
            tricks=tuple(sorted(config.tricks)),
            target_label=target_label,
            objectness_weight=config.objectness_weight,
            targeted=config.targeted,
            capture_probability=config.capture_probability,
            seed=config.seed,
        )
        evaluator = ParallelEvaluator(
            WorkSpec(init_fn=attack_worker_init, work_fn=attack_worker_step,
                     init_payload=payload, param_specs=param_specs,
                     grad_specs=grad_specs, max_samples=config.batch_frames),
            config.workers, obs=obs, perf=perf, name="attack.parallel",
        )
        if live is not None:
            live.ensure_probe("train.attack.pool", evaluator.probe)
    # Extra EOT-stream epoch (engine schedule): bumped on divergence
    # recovery so retries draw fresh per-sample streams; checkpointed for
    # bit-exact resume.
    eot_epoch = [0]

    # -- fault-tolerant step loop ------------------------------------------
    def snapshot(step: int) -> TrainingCheckpoint:
        state = {}
        for prefix, source in (
            ("gen.", generator.state_dict()),
            ("disc.", discriminator.state_dict()),
            ("gopt.", g_optimizer.state_dict()),
            ("dopt.", d_optimizer.state_dict()),
        ):
            state.update({prefix + k: np.asarray(v).copy() for k, v in source.items()})
        return TrainingCheckpoint(
            step=step, state=state,
            rngs={"batch": capture_rng(rng)},
            scalars={"lr": g_optimizer.lr, "eot_epoch": float(eot_epoch[0])},
        )

    def restore(checkpoint: TrainingCheckpoint) -> None:
        def part(prefix):
            return {k[len(prefix):]: v for k, v in checkpoint.state.items()
                    if k.startswith(prefix)}

        generator.load_state_dict(part("gen."))
        discriminator.load_state_dict(part("disc."))
        g_optimizer.load_state_dict(part("gopt."))
        d_optimizer.load_state_dict(part("dopt."))
        restore_rng(rng, checkpoint.rngs["batch"])
        eot_epoch[0] = int(checkpoint.scalars.get("eot_epoch", 0))

    start_step = 0
    if resumed is not None:
        restore(resumed)
        start_step = resumed.step
        log.event(start_step, "checkpoint_restore", path=manager.path)
    last_good: List[TrainingCheckpoint] = []  # single-slot rollback cell

    def run_steps(start: int) -> None:
        for step in range(start, config.steps):
            if manager.due(step) or not last_good:
                checkpoint = snapshot(step)
                last_good[:] = [checkpoint]
                manager.save(checkpoint)
                if ledger is not None:
                    ledger.checkpoint_saved()

            # -- discriminator --------------------------------------------
            real = sample_batch(config.shape, config.k, config.gan_batch, rng)
            z_noise = generator.sample_latent(config.gan_batch, rng)
            fake = generator(Tensor(z_noise))
            d_loss = discriminator_loss(
                discriminator(Tensor(real)), discriminator(fake.detach())
            )
            guard.check(step, d_loss=float(d_loss.data))
            d_optimizer.zero_grad()
            d_loss.backward()
            d_grad_norm = clip_grad_norm(discriminator.parameters(), config.grad_clip)
            guard.check(step, d_grad_norm=d_grad_norm)
            d_optimizer.step()

            # -- generator: adversarial + α · attack -----------------------
            fake = generator(Tensor(z_noise))
            adv = generator_adversarial_loss(discriminator(fake))

            patch = generator(Tensor(z_deploy))
            if evaluator is not None:
                # Engine schedule: the deployment patch is broadcast once
                # through the parameter slab; every EOT sample (transform →
                # composite → frozen-detector forward → L_f → patch grad)
                # evaluates independently under its own derived stream, and
                # the per-sample gradients come back through the gradient
                # slab to be summed in fixed tree order.
                indices = _batch_frame_indices(len(pool), config, rng)
                n_samples = len(indices)
                tasks = [
                    {"step": step, "epoch": eot_epoch[0],
                     "samples": [(i, frame_index)]}
                    for i, frame_index in enumerate(indices)
                ]
                out = evaluator.evaluate(
                    {"patch": np.ascontiguousarray(patch.data, dtype=np.float32)},
                    tasks, n_samples, ["patch"],
                )
                reduced = evaluator.reduce_grads(out)["patch"]
                mean_scale = np.float32(1.0 / n_samples)
                attack_value = float(evaluator.reduce(
                    [np.float32(s["loss"]) for s in out.scalars]) * mean_scale)
                g_loss_value = float(adv.data) + config.alpha * attack_value
                guard.check(step, g_loss=g_loss_value)
                g_optimizer.zero_grad()
                adv.backward()
                # d(α · mean loss)/d(patch) seeds the generator backward.
                patch.backward(reduced * np.float32(config.alpha / n_samples))
                n_frames = n_samples
            else:
                frames = _batch_frames(pool, config, rng)
                images, boxes = _composite_batch(
                    frames, patch, pipeline, rng,
                    capture_probability=config.capture_probability,
                )
                outputs = model(images)
                attack = attack_loss(outputs, boxes, model, target_label,
                                     config.objectness_weight,
                                     targeted=config.targeted)

                g_loss = adv + config.alpha * attack
                attack_value = float(attack.data)
                g_loss_value = float(g_loss.data)
                guard.check(step, g_loss=g_loss_value)
                g_optimizer.zero_grad()
                g_loss.backward()
                n_frames = len(frames)
            g_grad_norm = clip_grad_norm(generator.parameters(), config.grad_clip)
            guard.check(step, g_grad_norm=g_grad_norm)
            g_optimizer.step()
            if obs is not None:
                obs.metrics.counter("attack.steps_run").inc()
                obs.metrics.counter("attack.frames_composited").inc(n_frames)
            if ledger is not None:
                ledger.step(step, loss=g_loss_value, grad_norm=g_grad_norm,
                            d_loss=float(d_loss.data), d_grad_norm=d_grad_norm,
                            attack=attack_value, lr=g_optimizer.lr)
                ledger.set_epoch(eot_epoch[0])

            if step % 10 == 0 or step == config.steps - 1:
                log.log(step, d_loss=float(d_loss.data), adv=float(adv.data),
                        attack=attack_value, g_loss=g_loss_value,
                        d_grad_norm=d_grad_norm, g_grad_norm=g_grad_norm,
                        lr=g_optimizer.lr)

    def on_divergence(attempt_index: int, err) -> None:
        # Roll back, cut the learning rate, reseed the batch stream so the
        # retry explores a different trajectory from the last good state.
        checkpoint = last_good[0]
        restore(checkpoint)
        g_optimizer.lr = max(g_optimizer.lr * runtime.guard.lr_decay,
                             runtime.guard.min_lr)
        d_optimizer.lr = max(d_optimizer.lr * runtime.guard.lr_decay,
                             runtime.guard.min_lr)
        restore_rng(rng, capture_rng(np.random.default_rng(
            derive_seed(config.seed, "attack-retry", attempt_index))))
        # Engine mode draws per-sample streams from (seed, epoch, step, i)
        # rather than the batch rng, so retries advance the epoch instead.
        eot_epoch[0] += 1
        # Re-snapshot so a crash after recovery resumes with the cut LR
        # and the reseeded stream.
        recovered = snapshot(checkpoint.step)
        last_good[:] = [recovered]
        manager.save(recovered)
        if ledger is not None:
            ledger.recovery()
            ledger.checkpoint_saved()
            ledger.set_epoch(eot_epoch[0])
        log.event(err.step, "divergence_recovery", reason=err.reason,
                  attempt=attempt_index, lr=g_optimizer.lr,
                  rollback_step=checkpoint.step)

    try:
        with span_scope(obs, "attack.steps", steps=config.steps,
                        start_step=start_step):
            run_with_recovery(
                lambda attempt: run_steps(start_step if attempt == 0 else last_good[0].step),
                runtime.retry_policy(),
                on_divergence,
            )
    finally:
        # Divergence rollback (or any crash) must not strand worker
        # processes or /dev/shm segments.
        if evaluator is not None:
            evaluator.close()
    if not runtime.keep_checkpoint:
        manager.delete()

    if ledger is not None:
        ledger.finish()
    generator.eval()
    discriminator.eval()
    final_patch = generator(Tensor(z_deploy)).data[0]
    alpha = hard_background_mask(final_patch)
    return AttackResult(
        patch=final_patch.astype(np.float32),
        alpha=alpha,
        config=config,
        history=log,
        world_size_m=world_size,
    )
