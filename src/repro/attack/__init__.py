"""`repro.attack` — the paper's decal attack and the Sava et al. baseline."""

from .artifacts import (
    cached_path,
    load_attack,
    load_baseline,
    save_attack,
    save_baseline,
)
from .baseline_sava import SavaBaselineResult, train_sava_baseline
from .config import PAPER_TRICKS, AttackConfig
from .trainer import AttackResult, attack_loss, train_patch_attack

__all__ = [
    "AttackConfig",
    "PAPER_TRICKS",
    "AttackResult",
    "train_patch_attack",
    "attack_loss",
    "SavaBaselineResult",
    "train_sava_baseline",
    "save_attack",
    "load_attack",
    "save_baseline",
    "load_baseline",
    "cached_path",
]
