"""Reproduction of *Road Decals as Trojans: Disrupting Autonomous Vehicle
Navigation with Adversarial Patterns* (DSN 2024).

Monochrome, shape-constrained adversarial road decals against YOLOv3-tiny,
built entirely on a from-scratch numpy deep-learning stack:

* :mod:`repro.nn` — autodiff tensors, conv nets, optimizers;
* :mod:`repro.detection` — the YOLOv3-tiny victim detector;
* :mod:`repro.gan` — the shape-constrained patch GAN;
* :mod:`repro.eot` — differentiable Expectation Over Transformation;
* :mod:`repro.patch` — decal shapes, masking, placement, compositing;
* :mod:`repro.scene` — synthetic road world, trajectories, physical model;
* :mod:`repro.attack` — the paper's attack (Eq. 1) and the Sava baseline;
* :mod:`repro.eval` — PWC/CWC metrics and the challenge protocol;
* :mod:`repro.av` — confirmation tracker and rule planner (the AV stack
  behind the paper's CWC argument);
* :mod:`repro.runtime` — fault-tolerant runtime: checkpoint/resume,
  divergence recovery, sensor-fault injection (DESIGN.md §7);
* :mod:`repro.perf` — hot-path observability: stage timers, per-layer
  profiling hooks, JSON perf reports (DESIGN.md §8);
* :mod:`repro.obs` — unified run telemetry: hierarchical span tracing,
  a counter/gauge/histogram metrics registry, and atomic run manifests
  tying training and evaluation to one run identity (DESIGN.md §9);
* :mod:`repro.experiments` — turnkey experiment harness used by the
  benchmarks that regenerate every table and figure.

Quickstart::

    from repro.experiments import Workbench
    bench = Workbench.reduced(seed=0)
    attack = bench.train_attack()
    results = bench.evaluate(attack, physical=True)

See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
results versus the paper.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
