"""Frame-sequence rendering for attack training and evaluation.

An :class:`AttackScenario` fixes the world: one target object (the paper
attacks a road marking) plus scene style. Trajectories from
:mod:`repro.scene.trajectory` move the camera; this module renders each
:class:`~repro.scene.trajectory.FramePose` into a frame, optionally with

* a deployed decal set composited onto the road through the true
  perspective quad (evaluation path), and
* the physical capture degradation (real-world evaluation).

It also samples *training frames* — backgrounds plus the pixel-space decal
placements the differentiable attack trainer pastes patches into. Training
batches can be built from runs of three consecutive poses, the paper's key
dynamic-attack ingredient.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..detection.targets import GroundTruth
from ..patch.apply import PixelPlacement, paste_patch_perspective
from ..patch.placement import DECAL_ELONGATION, Placement
from .camera import Camera
from .physical import CaptureModel, camera_degrade
from .road import RoadScene, SceneObject, SceneStyle, render_scene, rotate_image, _rotate_box
from .trajectory import FramePose

__all__ = [
    "AttackScenario",
    "DeployedDecals",
    "RenderedFrame",
    "TrainingFrame",
    "render_frame",
    "render_run",
    "sample_training_frames",
]


@dataclass
class AttackScenario:
    """The attacked world: target object, context and rendering scale."""

    image_size: int = 96
    target_class: str = "mark"
    target_scale: float = 1.0
    style_seed: int = 7
    sprite_seed: int = 11
    include_context: bool = True

    def camera(self, roll_degrees: float = 0.0) -> Camera:
        return Camera(image_size=self.image_size, roll_degrees=roll_degrees)

    def style(self) -> SceneStyle:
        return SceneStyle.sample(np.random.default_rng(self.style_seed))

    def scene_for(self, pose: FramePose) -> RoadScene:
        objects = [
            SceneObject(
                class_name=self.target_class,
                z=pose.distance,
                x=pose.lateral,
                scale=self.target_scale,
                sprite_seed=self.sprite_seed,
            )
        ]
        if self.include_context:
            # A parked car far up the road provides realistic clutter.
            objects.append(
                SceneObject("car", z=pose.distance + 14.0, x=2.6,
                            sprite_seed=self.sprite_seed + 1)
            )
        return RoadScene(objects=objects, style=self.style())


@dataclass
class DeployedDecals:
    """A decal set as deployed on the road.

    ``patch_rgb`` is the printed appearance (CHW, k×k); physical runs pass
    it through :func:`repro.scene.physical.print_patch` first. Offsets are
    world-space placements relative to the target object.
    """

    patch_rgb: np.ndarray
    alpha: np.ndarray
    world_size_m: float
    offsets: Sequence[Placement]


@dataclass
class RenderedFrame:
    """One evaluation frame with its ground truth."""

    image: np.ndarray
    truth: GroundTruth
    target_box_xywh: Optional[np.ndarray]
    pose: FramePose


@dataclass
class TrainingFrame:
    """One attack-training background and its decal paste geometry."""

    image: np.ndarray
    target_box_xywh: np.ndarray
    placements: List[PixelPlacement]
    pose: FramePose


def _target_box(truth: GroundTruth, target_label: int) -> Optional[np.ndarray]:
    matches = np.nonzero(truth.labels == target_label)[0]
    if matches.size == 0:
        return None
    return truth.boxes_xywh[matches[0]]


def _decal_placements(
    camera: Camera, pose: FramePose, offsets: Sequence[Placement],
    world_size_m: float,
) -> List[PixelPlacement]:
    """Project world decal placements to axis-aligned pixel placements."""
    placements = []
    for offset in offsets:
        z = pose.distance + offset.dz
        x = pose.lateral + offset.dx
        length = DECAL_ELONGATION * world_size_m
        if z - length / 2.0 <= 0.3:
            continue  # decal's near edge has passed under the camera
        quad = camera.ground_patch_quad(z, x, world_size_m, length_m=length)
        center_v = float(quad[:, 0].mean())
        center_u = float(quad[:, 1].mean())
        size = float(abs(quad[1, 1] - quad[0, 1]))      # near-edge width
        height = float(abs(quad[0, 0] - quad[3, 0]))    # projected length
        placements.append(PixelPlacement(center_v, center_u, size, height_px=height))
    return placements


def render_frame(
    scenario: AttackScenario,
    pose: FramePose,
    rng: np.random.Generator,
    decals: Optional[DeployedDecals] = None,
    physical: bool = False,
    capture_model: Optional[CaptureModel] = None,
) -> RenderedFrame:
    """Render one frame of an evaluation run."""
    from ..detection.config import CLASS_NAMES

    camera = scenario.camera()  # roll applied manually after compositing
    scene = scenario.scene_for(pose)
    image, truth = render_scene(scene, camera, rng)

    if decals is not None:
        for offset in decals.offsets:
            z = pose.distance + offset.dz
            x = pose.lateral + offset.dx
            length = DECAL_ELONGATION * decals.world_size_m
            if z - length / 2.0 <= 0.3:
                continue  # decal's near edge has passed under the camera
            quad = camera.ground_patch_quad(z, x, decals.world_size_m,
                                            length_m=length)
            image = paste_patch_perspective(image, decals.patch_rgb, decals.alpha, quad)

    if abs(pose.roll_degrees) > 1e-6:
        image = rotate_image(image, pose.roll_degrees)
        boxes = [
            _rotate_box(tuple(b), pose.roll_degrees, scenario.image_size)
            for b in truth.boxes_xywh
        ]
        truth = GroundTruth(
            boxes_xywh=np.asarray(boxes, dtype=np.float32).reshape(-1, 4),
            labels=truth.labels,
        )

    if physical:
        image = camera_degrade(image, rng, speed_kmh=pose.speed_kmh, model=capture_model)

    target_label = CLASS_NAMES.index(scenario.target_class)
    return RenderedFrame(
        image=image,
        truth=truth,
        target_box_xywh=_target_box(truth, target_label),
        pose=pose,
    )


def render_run(
    scenario: AttackScenario,
    poses: Sequence[FramePose],
    rng: np.random.Generator,
    decals: Optional[DeployedDecals] = None,
    physical: bool = False,
    capture_model: Optional[CaptureModel] = None,
) -> List[RenderedFrame]:
    """Render a whole challenge video."""
    return [
        render_frame(scenario, pose, rng, decals=decals, physical=physical,
                     capture_model=capture_model)
        for pose in poses
    ]


def sample_training_frames(
    scenario: AttackScenario,
    rng: np.random.Generator,
    count: int,
    offsets: Sequence[Placement],
    world_size_m: float,
    consecutive: bool = True,
    group: int = 3,
    distance_range: Tuple[float, float] = (4.5, 11.0),
    speed_kmh: float = 25.0,
    fps: float = 10.0,
    degrade_fraction: float = 0.5,
    style_seeds: Optional[Sequence[int]] = None,
) -> List[TrainingFrame]:
    """Sample attack-training frames.

    With ``consecutive=True`` frames come in runs of ``group`` consecutive
    poses of an approach (the paper's batch construction, §III-B); otherwise
    each frame is an independent random pose (the "w/o 3 consecutive
    frames" ablation row of Table I). A ``degrade_fraction`` of frames pass
    through the capture model — the paper's training images are real
    photographs and carry real camera noise, which is what lets its decals
    transfer to the physical evaluation.

    ``style_seeds``, if given, draws each approach run's scene style from
    the list instead of the scenario's fixed style — training a *universal*
    decal across scenes (extension toward the paper's future work).
    """
    import dataclasses

    from ..detection.config import CLASS_NAMES

    target_label = CLASS_NAMES.index(scenario.target_class)
    camera = scenario.camera()
    step = speed_kmh / 3.6 / fps
    frames: List[TrainingFrame] = []
    while len(frames) < count:
        if consecutive:
            start = rng.uniform(distance_range[0] + step * group, distance_range[1])
            distances = [start - i * step for i in range(group)]
        else:
            distances = [rng.uniform(*distance_range)]
        lateral = rng.uniform(-0.6, 0.6)
        run_scenario = scenario
        if style_seeds:
            chosen = int(style_seeds[int(rng.integers(0, len(style_seeds)))])
            run_scenario = dataclasses.replace(scenario, style_seed=chosen)
        run_frames: List[TrainingFrame] = []
        for distance in distances:
            pose = FramePose(distance, lateral, 0.0, speed_kmh)
            scene = run_scenario.scene_for(pose)
            image, truth = render_scene(scene, camera, rng)
            box = _target_box(truth, target_label)
            if box is None:
                # Consecutive mode must keep runs intact so batches stay
                # aligned to whole approach runs — drop the entire run.
                run_frames = []
                break
            if rng.random() < degrade_fraction:
                image = camera_degrade(
                    image, rng, speed_kmh=float(rng.uniform(0.0, speed_kmh))
                )
            placements = _decal_placements(camera, pose, offsets, world_size_m)
            run_frames.append(TrainingFrame(image, box, placements, pose))
        if run_frames:
            frames.extend(run_frames[: count - len(frames)])
    return frames
