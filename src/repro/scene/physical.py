"""Digital→physical degradation model.

The paper's central empirical claim is that *colored* adversarial patches
lose most of their effect when printed and photographed ("slight
discrepancies between the colors of the printed APs and their digital
counterparts", §IV-B), while monochrome decals survive. This module is the
substitution for their printer + camera loop (DESIGN.md §2):

* :func:`print_patch` — printer gamut compression, channel crosstalk and
  per-channel gain error. Nearly an identity for near-black/near-white
  pixels, strongly distorting for saturated colors.
* :func:`camera_degrade` — what the car's camera adds at capture time:
  low-frequency illumination/shadow fields, speed-proportional motion blur,
  defocus and sensor noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import ndimage

__all__ = ["PrintModel", "CaptureModel", "print_patch", "camera_degrade"]


@dataclass(frozen=True)
class PrintModel:
    """Parameters of the printer gamut model.

    ``gamut_low``/``gamut_high`` compress the dynamic range (ink cannot
    reach pure black, paper is not pure white); ``crosstalk`` mixes channels
    toward gray (CMYK conversion loses saturation); ``gain_jitter`` is the
    per-channel calibration error that differs print to print.
    """

    gamut_low: float = 0.06
    gamut_high: float = 0.93
    crosstalk: float = 0.35
    gain_jitter: float = 0.08
    response_gamma: float = 1.15


def print_patch(
    patch_rgb: np.ndarray,
    rng: np.random.Generator,
    model: Optional[PrintModel] = None,
) -> np.ndarray:
    """Simulate printing a CHW decal image.

    Saturated colors are desaturated and shifted; monochrome content is
    barely affected (black → dark gray, white → off-white), which is exactly
    why the paper restricts its decals to one color.
    """
    model = model or PrintModel()
    patch = np.clip(np.asarray(patch_rgb, dtype=np.float32), 0.0, 1.0)
    if patch.ndim == 2:
        patch = patch[None]
    if patch.shape[0] == 1:
        patch = np.repeat(patch, 3, axis=0)

    # Channel crosstalk: mix each channel toward the pixel luminance.
    luminance = patch.mean(axis=0, keepdims=True)
    saturation = np.abs(patch - luminance).max(axis=0, keepdims=True)
    mix = model.crosstalk * np.clip(saturation * 3.0, 0.0, 1.0)
    printed = patch * (1 - mix) + luminance * mix

    # Per-channel gain calibration error.
    gains = 1.0 + rng.uniform(-model.gain_jitter, model.gain_jitter, size=(3, 1, 1))
    printed = printed * gains.astype(np.float32)

    # Non-linear ink response and gamut compression.
    printed = np.clip(printed, 0.0, 1.0) ** model.response_gamma
    printed = model.gamut_low + printed * (model.gamut_high - model.gamut_low)
    return printed.astype(np.float32)


@dataclass(frozen=True)
class CaptureModel:
    """Parameters of the capture-time degradation."""

    illumination_amplitude: float = 0.04
    shadow_probability: float = 0.3
    shadow_strength: float = 0.1
    defocus_sigma: float = 0.15
    noise_sigma: float = 0.005
    blur_per_speed: float = 0.05  # motion-blur pixels per km/h


def _illumination_field(shape_hw, rng: np.random.Generator,
                        amplitude: float) -> np.ndarray:
    """Smooth multiplicative lighting field in [1-a, 1+a]."""
    h, w = shape_hw
    coarse = rng.normal(0.0, 1.0, size=(max(h // 16, 2), max(w // 16, 2)))
    field = ndimage.zoom(coarse, (h / coarse.shape[0], w / coarse.shape[1]), order=1)
    field = field[:h, :w]
    field = field / (np.abs(field).max() + 1e-9)
    return (1.0 + amplitude * field).astype(np.float32)


def _shadow_band(shape_hw, rng: np.random.Generator, strength: float) -> np.ndarray:
    """A soft diagonal shadow band (e.g. cast by a structure)."""
    h, w = shape_hw
    angle = rng.uniform(0, np.pi)
    offset = rng.uniform(0.2, 0.8)
    ys, xs = np.mgrid[0:h, 0:w].astype(np.float32)
    axis = (np.cos(angle) * xs / w + np.sin(angle) * ys / h)
    band = np.exp(-((axis - offset) ** 2) / (2 * 0.08 ** 2))
    return (1.0 - strength * band).astype(np.float32)


def camera_degrade(
    frame: np.ndarray,
    rng: np.random.Generator,
    speed_kmh: float = 0.0,
    model: Optional[CaptureModel] = None,
) -> np.ndarray:
    """Degrade a rendered CHW frame the way a real capture would.

    Motion blur grows with ``speed_kmh``, which is what makes the paper's
    "fast" setting the hardest for every attack (Tables I-VI all show the
    same monotone drop).
    """
    model = model or CaptureModel()
    frame = np.asarray(frame, dtype=np.float32).copy()
    _, h, w = frame.shape

    field = _illumination_field((h, w), rng, model.illumination_amplitude)
    frame *= field[None]
    if rng.random() < model.shadow_probability:
        frame *= _shadow_band((h, w), rng, model.shadow_strength)[None]

    blur_px = model.blur_per_speed * max(speed_kmh, 0.0)
    if blur_px >= 0.5:
        # Vertical streak: the scene flows downward/outward while driving.
        kernel_len = max(int(round(blur_px)), 1)
        frame = ndimage.uniform_filter1d(frame, size=kernel_len + 1, axis=1)
    if model.defocus_sigma > 0:
        frame = ndimage.gaussian_filter(frame, sigma=(0, model.defocus_sigma, model.defocus_sigma))

    frame += rng.normal(0.0, model.noise_sigma, size=frame.shape).astype(np.float32)
    return np.clip(frame, 0.0, 1.0)
