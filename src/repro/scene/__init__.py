"""`repro.scene` — the synthetic world substrate.

Replaces the paper's physical testbed: procedural road scenes, a pinhole
camera, approach trajectories for the three challenges, the digital→
physical degradation model, and the synthetic analogue of the paper's
1000/71 road dataset (DESIGN.md §2).
"""

from .camera import Camera
from .dataset import DatasetConfig, build_dataset, paper_split_sizes
from .physical import CaptureModel, PrintModel, camera_degrade, print_patch
from .road import (
    OBJECT_SIZES,
    RoadScene,
    SceneObject,
    SceneStyle,
    render_scene,
    rotate_image,
)
from .sprites import GROUND_CLASSES, SPRITE_RENDERERS, render_sprite
from .trajectory import (
    CHALLENGES,
    SPEED_KMH,
    FramePose,
    angle_trajectory,
    challenge_trajectory,
    rotation_trajectory,
    speed_trajectory,
)
from .video import (
    AttackScenario,
    DeployedDecals,
    RenderedFrame,
    TrainingFrame,
    render_frame,
    render_run,
    sample_training_frames,
)

__all__ = [
    "Camera",
    "RoadScene",
    "SceneObject",
    "SceneStyle",
    "render_scene",
    "rotate_image",
    "OBJECT_SIZES",
    "render_sprite",
    "SPRITE_RENDERERS",
    "GROUND_CLASSES",
    "DatasetConfig",
    "build_dataset",
    "paper_split_sizes",
    "PrintModel",
    "CaptureModel",
    "print_patch",
    "camera_degrade",
    "FramePose",
    "SPEED_KMH",
    "CHALLENGES",
    "rotation_trajectory",
    "speed_trajectory",
    "angle_trajectory",
    "challenge_trajectory",
    "AttackScenario",
    "DeployedDecals",
    "RenderedFrame",
    "TrainingFrame",
    "render_frame",
    "render_run",
    "sample_training_frames",
]
