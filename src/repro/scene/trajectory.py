"""Camera trajectories for the paper's three evaluation challenges (§IV).

* **Rotation** — the camera stands still and is gently shaken: ``fix``
  (no shake) vs ``slight rotation`` (sinusoidal roll).
* **Speed** — the camera approaches the target at slow (15 km/h), normal
  (25 km/h) or fast (35 km/h); faster runs have fewer frames over the same
  approach distance, larger frame-to-frame scale jumps and more motion blur.
* **Angles** — the target sits at −15°, 0° or +15° of the camera's forward
  axis while the camera approaches (Fig. 3).

A trajectory is a list of :class:`FramePose` — distance to the target,
lateral offset, camera roll, and the speed used for blur modeling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = [
    "FramePose",
    "SPEED_KMH",
    "rotation_trajectory",
    "speed_trajectory",
    "angle_trajectory",
    "challenge_trajectory",
    "CHALLENGES",
]

#: The paper's speed settings (§IV).
SPEED_KMH: Dict[str, float] = {"slow": 15.0, "normal": 25.0, "fast": 35.0}

#: Evaluation video parameters shared by all challenges.
FPS = 10.0
APPROACH_START_M = 11.0
APPROACH_END_M = 4.0
STATIC_DISTANCE_M = 5.5
STATIC_FRAMES = 30
ANGLE_SPEED = "slow"


@dataclass(frozen=True)
class FramePose:
    """Camera/target relation for one video frame."""

    distance: float       # forward distance camera→target (m)
    lateral: float        # target lateral offset (m, + = right)
    roll_degrees: float   # camera roll
    speed_kmh: float      # instantaneous speed (drives motion blur)


def rotation_trajectory(setting: str) -> List[FramePose]:
    """'fix' or 'slight' — stationary camera, optional hand-shake roll."""
    if setting not in ("fix", "slight"):
        raise KeyError(f"rotation setting must be 'fix' or 'slight', got {setting!r}")
    amplitude = 0.0 if setting == "fix" else 5.0
    poses = []
    for t in range(STATIC_FRAMES):
        roll = amplitude * math.sin(2 * math.pi * t / 12.0)
        poses.append(FramePose(STATIC_DISTANCE_M, 0.0, roll, 0.0))
    return poses


def speed_trajectory(setting: str) -> List[FramePose]:
    """'slow' / 'normal' / 'fast' — approach over the same distance."""
    if setting not in SPEED_KMH:
        raise KeyError(f"speed setting must be one of {sorted(SPEED_KMH)}, got {setting!r}")
    speed = SPEED_KMH[setting]
    step = speed / 3.6 / FPS  # metres per frame
    poses = []
    distance = APPROACH_START_M
    while distance > APPROACH_END_M:
        poses.append(FramePose(distance, 0.0, 0.0, speed))
        distance -= step
    if not poses:
        raise RuntimeError("empty speed trajectory — check parameters")
    return poses


def angle_trajectory(setting: str) -> List[FramePose]:
    """'-15', '0' or '+15' degrees — lateral target offset during approach."""
    angles = {"-15": -15.0, "0": 0.0, "+15": 15.0}
    if setting not in angles:
        raise KeyError(f"angle setting must be one of {sorted(angles)}, got {setting!r}")
    angle = math.radians(angles[setting])
    speed = SPEED_KMH[ANGLE_SPEED]
    step = speed / 3.6 / FPS
    poses = []
    distance = APPROACH_START_M
    while distance > APPROACH_END_M:
        lateral = math.tan(angle) * distance * 0.35  # bounded lateral drift
        poses.append(FramePose(distance, lateral, 0.0, speed))
        distance -= step
    return poses


#: challenge name → (family, builder)
CHALLENGES: Dict[str, Tuple[str, str]] = {
    "rotation/fix": ("rotation", "fix"),
    "rotation/slight": ("rotation", "slight"),
    "speed/slow": ("speed", "slow"),
    "speed/normal": ("speed", "normal"),
    "speed/fast": ("speed", "fast"),
    "angle/-15": ("angle", "-15"),
    "angle/0": ("angle", "0"),
    "angle/+15": ("angle", "+15"),
}


def challenge_trajectory(name: str) -> List[FramePose]:
    """Build the trajectory for a challenge key like ``'speed/fast'``."""
    if name not in CHALLENGES:
        raise KeyError(f"unknown challenge {name!r}; choices: {sorted(CHALLENGES)}")
    family, setting = CHALLENGES[name]
    if family == "rotation":
        return rotation_trajectory(setting)
    if family == "speed":
        return speed_trajectory(setting)
    return angle_trajectory(setting)
