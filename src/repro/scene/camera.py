"""Pinhole camera model over a flat road plane.

The simulator replaces the paper's physical camera rig (DESIGN.md §2). A
camera at height ``height`` metres looks down the road (+Z axis). Ground
points and object extents project through the standard pinhole equations,
which gives the reproduction the same geometry the paper's challenges vary:
apparent object size grows as 1/Z while the car approaches, and lateral
world offsets move the object across the frame.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["Camera"]


@dataclass(frozen=True)
class Camera:
    """A forward-facing pinhole camera above a flat road.

    Attributes
    ----------
    image_size:
        Square output resolution in pixels.
    height:
        Camera height above the road plane in metres (typical dashcam ≈1.4).
    focal_fraction:
        Focal length as a fraction of the image width.
    horizon_fraction:
        Vertical position of the horizon line as a fraction of image height.
    roll_degrees:
        Camera roll (rotation about the optical axis) — the paper's
        "rotation" challenge shakes this.
    """

    image_size: int = 96
    height: float = 1.4
    focal_fraction: float = 0.9
    horizon_fraction: float = 0.38
    roll_degrees: float = 0.0

    @property
    def focal(self) -> float:
        return self.focal_fraction * self.image_size

    @property
    def horizon_v(self) -> float:
        return self.horizon_fraction * self.image_size

    @property
    def center_u(self) -> float:
        return self.image_size / 2.0

    # ------------------------------------------------------------------
    def project_ground(self, z: float, x: float) -> Tuple[float, float]:
        """Project a road-plane point at forward ``z``, lateral ``x`` (metres).

        Returns (v, u) pixel coordinates. Points behind the camera or at
        z<=0 raise ``ValueError``.
        """
        if z <= 0:
            raise ValueError(f"ground point must be in front of the camera, z={z}")
        v = self.horizon_v + self.focal * self.height / z
        u = self.center_u + self.focal * x / z
        return self._apply_roll(v, u)

    def vertical_extent(self, z: float, height_m: float) -> float:
        """Apparent pixel height of a vertical object of ``height_m`` at ``z``."""
        if z <= 0:
            raise ValueError("object must be in front of the camera")
        return self.focal * height_m / z

    def horizontal_extent(self, z: float, width_m: float) -> float:
        """Apparent pixel width of an object of ``width_m`` at ``z``."""
        if z <= 0:
            raise ValueError("object must be in front of the camera")
        return self.focal * width_m / z

    def ground_patch_quad(self, z: float, x: float, size_m: float,
                          length_m: Optional[float] = None) -> np.ndarray:
        """Pixel quad (4×2, (v,u) rows) of a decal lying on the road.

        ``size_m`` is the lateral width; ``length_m`` the extent along the
        road (defaults to square). Road markings are usually elongated
        along the driving direction to counter foreshortening — the decals
        here follow that convention. Corners ordered: near-left,
        near-right, far-right, far-left. The perspective foreshortening of
        this quad is what the paper's EOT 'perspective' trick must make the
        patch robust to.
        """
        half_w = size_m / 2.0
        half_l = (length_m if length_m is not None else size_m) / 2.0
        corners = [
            (z - half_l, x - half_w),
            (z - half_l, x + half_w),
            (z + half_l, x + half_w),
            (z + half_l, x - half_w),
        ]
        return np.asarray([self.project_ground(cz, cx) for cz, cx in corners],
                          dtype=np.float32)

    def _apply_roll(self, v: float, u: float) -> Tuple[float, float]:
        if abs(self.roll_degrees) < 1e-9:
            return v, u
        angle = math.radians(self.roll_degrees)
        cv, cu = self.image_size / 2.0, self.image_size / 2.0
        dv, du = v - cv, u - cu
        cos_a, sin_a = math.cos(angle), math.sin(angle)
        return (cv + cos_a * dv - sin_a * du, cu + sin_a * dv + cos_a * du)

    def with_roll(self, roll_degrees: float) -> "Camera":
        """Copy of this camera with a different roll angle."""
        return Camera(
            image_size=self.image_size,
            height=self.height,
            focal_fraction=self.focal_fraction,
            horizon_fraction=self.horizon_fraction,
            roll_degrees=roll_degrees,
        )
