"""Procedural sprites for the five road-dataset classes.

The paper's dataset labels are person, word, mark, car, bicycle (§IV). Each
sprite function rasterizes one instance at an arbitrary pixel size into an
RGBA-style pair (RGB image + alpha mask) so the road renderer can scale
objects with camera distance and composite them over the asphalt.

Sprites are parameterized by an RNG so the detector never sees two
identical instances — color jitter, proportions and glyph layouts vary —
which is what makes the synthetic dataset trainable rather than memorizable.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Tuple

import numpy as np

from ..utils.drawing import (
    draw_line,
    fill_circle,
    fill_polygon,
    fill_rect,
)

__all__ = ["render_sprite", "SPRITE_RENDERERS", "GROUND_CLASSES"]

Sprite = Tuple[np.ndarray, np.ndarray]  # (rgb CHW, alpha HW)

#: Classes painted flat on the road (foreshortened) vs standing upright.
GROUND_CLASSES = frozenset({"word", "mark"})


def _canvas(height: int, width: int) -> Tuple[np.ndarray, np.ndarray]:
    return (
        np.zeros((3, height, width), dtype=np.float32),
        np.zeros((height, width), dtype=np.float32),
    )


def _stamp_alpha(alpha: np.ndarray, rgb: np.ndarray) -> None:
    """Mark every non-black pixel of the rgb canvas as opaque."""
    alpha[...] = np.maximum(alpha, (rgb.max(axis=0) > 0.02).astype(np.float32))


def _jitter(rng: np.random.Generator, color: Tuple[float, float, float],
            amount: float = 0.08) -> Tuple[float, float, float]:
    return tuple(float(np.clip(c + rng.uniform(-amount, amount), 0.02, 1.0)) for c in color)


def render_person(height: int, width: int, rng: np.random.Generator) -> Sprite:
    """A pedestrian: round head, bright torso, dark legs."""
    rgb, alpha = _canvas(height, width)
    torso_color = _jitter(rng, (0.85, 0.2, 0.18))
    skin = _jitter(rng, (0.9, 0.75, 0.6), 0.05)
    legs = _jitter(rng, (0.15, 0.15, 0.2), 0.05)
    cx = width / 2.0
    head_r = height * 0.11
    fill_circle(rgb, height * 0.12, cx, head_r, skin)
    fill_rect(rgb, int(height * 0.22), int(cx - width * 0.22),
              int(height * 0.58), int(cx + width * 0.22), torso_color)
    leg_w = max(1, int(width * 0.12))
    fill_rect(rgb, int(height * 0.58), int(cx - width * 0.2),
              int(height * 0.98), int(cx - width * 0.2) + leg_w, legs)
    fill_rect(rgb, int(height * 0.58), int(cx + width * 0.2) - leg_w,
              int(height * 0.98), int(cx + width * 0.2), legs)
    # Arms.
    fill_rect(rgb, int(height * 0.25), int(cx - width * 0.34),
              int(height * 0.5), int(cx - width * 0.22), torso_color)
    fill_rect(rgb, int(height * 0.25), int(cx + width * 0.22),
              int(height * 0.5), int(cx + width * 0.34), torso_color)
    _stamp_alpha(alpha, rgb)
    return rgb, alpha


def render_car(height: int, width: int, rng: np.random.Generator) -> Sprite:
    """A rear-view car: colored body, dark window band, two wheels."""
    rgb, alpha = _canvas(height, width)
    body = _jitter(rng, (0.2, 0.35, 0.85), 0.12)
    window = _jitter(rng, (0.1, 0.12, 0.16), 0.03)
    wheel = (0.05, 0.05, 0.05)
    fill_rect(rgb, int(height * 0.3), int(width * 0.05),
              int(height * 0.85), int(width * 0.95), body)
    # Cabin.
    fill_polygon(
        rgb,
        [
            (height * 0.3, width * 0.15),
            (height * 0.05, width * 0.3),
            (height * 0.05, width * 0.7),
            (height * 0.3, width * 0.85),
        ],
        body,
    )
    fill_rect(rgb, int(height * 0.1), int(width * 0.3),
              int(height * 0.28), int(width * 0.7), window)
    wheel_r = height * 0.14
    fill_circle(rgb, height * 0.85, width * 0.25, wheel_r, wheel)
    fill_circle(rgb, height * 0.85, width * 0.75, wheel_r, wheel)
    # Tail lights.
    light = (0.95, 0.15, 0.1)
    fill_rect(rgb, int(height * 0.38), int(width * 0.08),
              int(height * 0.48), int(width * 0.2), light)
    fill_rect(rgb, int(height * 0.38), int(width * 0.8),
              int(height * 0.48), int(width * 0.92), light)
    _stamp_alpha(alpha, rgb)
    return rgb, alpha


def render_bicycle(height: int, width: int, rng: np.random.Generator) -> Sprite:
    """A side-view bicycle: two wheels, triangular frame, rider-less."""
    rgb, alpha = _canvas(height, width)
    frame = _jitter(rng, (0.2, 0.8, 0.3), 0.1)
    tire = (0.08, 0.08, 0.08)
    wheel_r = min(height, width) * 0.28
    left = (height * 0.68, width * 0.25)
    right = (height * 0.68, width * 0.75)
    thickness = max(1.5, height * 0.07)
    for cy, cx in (left, right):
        fill_circle(rgb, cy, cx, wheel_r, tire)
        fill_circle(rgb, cy, cx, wheel_r * 0.6, (0.0, 0.0, 0.0))
        alpha_hole = ((np.mgrid[0:height, 0:width][0] + 0.5 - cy) ** 2
                      + (np.mgrid[0:height, 0:width][1] + 0.5 - cx) ** 2) <= (wheel_r * 0.6) ** 2
        rgb[:, alpha_hole] = 0.0
    seat = (height * 0.28, width * 0.42)
    bar = (height * 0.25, width * 0.72)
    crank = (height * 0.62, width * 0.5)
    draw_line(rgb, left[0], left[1], seat[0], seat[1], frame, thickness)
    draw_line(rgb, seat[0], seat[1], crank[0], crank[1], frame, thickness)
    draw_line(rgb, crank[0], crank[1], right[0], right[1], frame, thickness)
    draw_line(rgb, seat[0], seat[1], bar[0], bar[1], frame, thickness)
    draw_line(rgb, bar[0], bar[1], right[0], right[1], frame, thickness)
    draw_line(rgb, bar[0] - height * 0.08, bar[1], bar[0], bar[1], frame, thickness)
    _stamp_alpha(alpha, rgb)
    return rgb, alpha


def render_word(height: int, width: int, rng: np.random.Generator) -> Sprite:
    """Road-painted text: 3-5 blocky glyphs in a row (e.g. 'SLOW')."""
    rgb, alpha = _canvas(height, width)
    paint = _jitter(rng, (0.92, 0.92, 0.88), 0.05)
    glyphs = int(rng.integers(3, 6))
    gap = width * 0.04
    glyph_w = (width - gap * (glyphs + 1)) / glyphs
    for g in range(glyphs):
        x0 = gap + g * (glyph_w + gap)
        segments = rng.integers(2, 4)
        # Vertical stroke.
        fill_rect(rgb, int(height * 0.08), int(x0),
                  int(height * 0.92), int(x0 + glyph_w * 0.3), paint)
        # Horizontal strokes at random heights.
        for s in range(segments):
            y = height * (0.12 + 0.7 * rng.random())
            fill_rect(rgb, int(y), int(x0),
                      int(y + height * 0.14), int(x0 + glyph_w), paint)
    _stamp_alpha(alpha, rgb)
    return rgb, alpha


def render_mark(height: int, width: int, rng: np.random.Generator) -> Sprite:
    """A white lane arrow painted on the road — the paper's attack target."""
    rgb, alpha = _canvas(height, width)
    paint = _jitter(rng, (0.95, 0.95, 0.9), 0.04)
    cx = width / 2.0
    shaft_w = width * rng.uniform(0.16, 0.22)
    head_w = width * rng.uniform(0.4, 0.5)
    head_h = height * rng.uniform(0.3, 0.4)
    fill_rect(rgb, int(head_h), int(cx - shaft_w / 2),
              int(height * 0.98), int(cx + shaft_w / 2), paint)
    fill_polygon(
        rgb,
        [(head_h, cx - head_w / 2), (0.02 * height, cx), (head_h, cx + head_w / 2)],
        paint,
    )
    _stamp_alpha(alpha, rgb)
    return rgb, alpha


SPRITE_RENDERERS: Dict[str, Callable[[int, int, np.random.Generator], Sprite]] = {
    "person": render_person,
    "word": render_word,
    "mark": render_mark,
    "car": render_car,
    "bicycle": render_bicycle,
}


def render_sprite(class_name: str, height: int, width: int,
                  rng: np.random.Generator) -> Sprite:
    """Render one sprite instance of ``class_name`` at the given pixel size."""
    if class_name not in SPRITE_RENDERERS:
        raise KeyError(f"unknown sprite class {class_name!r}; "
                       f"choices: {sorted(SPRITE_RENDERERS)}")
    height = max(int(height), 3)
    width = max(int(width), 3)
    return SPRITE_RENDERERS[class_name](height, width, rng)
