"""Synthetic road dataset builder.

The paper fine-tunes on 1000 self-collected road images with 71 held out
for testing (§IV). This builder generates the analogous synthetic sets:
each image is a rendered road scene containing 1-3 objects drawn from the
five classes at varied distances, lateral placements, styles and sprite
seeds. The class mix is balanced so the reduced detector can learn every
class from a small sample count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..detection.config import CLASS_NAMES
from ..detection.targets import GroundTruth
from ..utils.rng import derive_seed
from .camera import Camera
from .physical import camera_degrade
from .road import OBJECT_SIZES, RoadScene, SceneObject, SceneStyle, render_scene

__all__ = ["DatasetConfig", "build_dataset", "paper_split_sizes"]

Sample = Tuple[np.ndarray, GroundTruth]

#: The paper's train/test split (§IV).
PAPER_TRAIN_SIZE = 1000
PAPER_TEST_SIZE = 71


def paper_split_sizes() -> Tuple[int, int]:
    return PAPER_TRAIN_SIZE, PAPER_TEST_SIZE


@dataclass
class DatasetConfig:
    """Knobs of the synthetic dataset generator."""

    image_size: int = 96
    min_objects: int = 1
    max_objects: int = 3
    distance_range: Tuple[float, float] = (4.0, 16.0)
    lateral_range: Tuple[float, float] = (-1.4, 1.4)
    #: Fraction of images passed through the capture-degradation model, so
    #: the fine-tuned detector — like one trained on real photographs — is
    #: robust to blur, noise and lighting fields and the paper's clean
    #: "w/o attack" rows stay clean under physical evaluation.
    degrade_fraction: float = 0.5
    seed: int = 0

    def camera(self) -> Camera:
        return Camera(image_size=self.image_size)


def _sample_object(rng: np.random.Generator, config: DatasetConfig,
                   class_name: str, index: int) -> SceneObject:
    z = float(rng.uniform(*config.distance_range))
    if class_name in ("person", "bicycle"):
        # Keep vulnerable road users near the shoulder most of the time.
        x = float(rng.choice([-1, 1]) * rng.uniform(1.0, 2.2))
    else:
        x = float(rng.uniform(*config.lateral_range))
    return SceneObject(
        class_name=class_name,
        z=z,
        x=x,
        scale=float(rng.uniform(0.85, 1.2)),
        sprite_seed=int(rng.integers(0, 2 ** 31 - 1)),
    )


def build_dataset(count: int, config: Optional[DatasetConfig] = None,
                  seed: Optional[int] = None) -> List[Sample]:
    """Generate ``count`` (image, truth) samples.

    Class balance: each image's first object cycles deterministically over
    the class list; any further objects are uniform random. Images are only
    kept if at least one object survived projection (is visibly large
    enough to label), so every sample has supervision.
    """
    config = config or DatasetConfig()
    if seed is not None:
        config = DatasetConfig(
            image_size=config.image_size,
            min_objects=config.min_objects,
            max_objects=config.max_objects,
            distance_range=config.distance_range,
            lateral_range=config.lateral_range,
            degrade_fraction=config.degrade_fraction,
            seed=seed,
        )
    camera = config.camera()
    samples: List[Sample] = []
    attempt = 0
    while len(samples) < count:
        rng = np.random.default_rng(derive_seed(config.seed, "scene", attempt))
        attempt += 1
        primary_class = CLASS_NAMES[len(samples) % len(CLASS_NAMES)]
        n_objects = int(rng.integers(config.min_objects, config.max_objects + 1))
        objects = [_sample_object(rng, config, primary_class, 0)]
        # Primary object closer to the camera so it is always labelable.
        objects[0].z = float(rng.uniform(config.distance_range[0],
                                         config.distance_range[1] * 0.6))
        for i in range(1, n_objects):
            extra = CLASS_NAMES[int(rng.integers(0, len(CLASS_NAMES)))]
            candidate = _sample_object(rng, config, extra, i)
            # Avoid heavy overlap with the primary object.
            if abs(candidate.z - objects[0].z) < 2.0 and abs(candidate.x - objects[0].x) < 1.0:
                candidate.z = objects[0].z + 4.0
            objects.append(candidate)
        scene = RoadScene(objects=objects, style=SceneStyle.sample(rng))
        image, truth = render_scene(scene, camera, rng)
        if len(truth.labels) == 0:
            continue
        if rng.random() < config.degrade_fraction:
            speed = float(rng.uniform(0.0, 35.0))
            image = camera_degrade(image, rng, speed_kmh=speed)
        samples.append((image, truth))
    return samples
