"""Road-scene composition: asphalt, lane markings and objects.

`render_scene` produces a CHW float image plus YOLO ground truth — the
synthetic stand-in for the paper's self-collected road photographs
(DESIGN.md §2). All geometry goes through :class:`~repro.scene.camera.Camera`
so apparent sizes and positions behave like a real approach video.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..detection.targets import GroundTruth
from .camera import Camera
from .sprites import GROUND_CLASSES, render_sprite

__all__ = ["SceneObject", "SceneStyle", "RoadScene", "render_scene", "rotate_image"]

#: Nominal object sizes in metres: (height or length, width).
OBJECT_SIZES = {
    "person": (1.7, 0.6),
    "car": (1.5, 1.8),
    "bicycle": (1.1, 1.7),
    "word": (3.2, 2.8),   # painted length along road, width across
    "mark": (5.0, 1.6),   # road arrows are long — highway arrows reach 5 m
}

#: Minimum projected box size (pixels) for an object to be labeled.
MIN_BOX_PIXELS = 3.0


@dataclass
class SceneObject:
    """One object in world coordinates.

    ``z`` is the forward distance from the camera in metres, ``x`` the
    lateral offset (positive = right). ``scale`` multiplies the nominal
    class size.
    """

    class_name: str
    z: float
    x: float = 0.0
    scale: float = 1.0
    sprite_seed: int = 0

    def world_size(self) -> Tuple[float, float]:
        base_h, base_w = OBJECT_SIZES[self.class_name]
        return base_h * self.scale, base_w * self.scale


@dataclass
class SceneStyle:
    """Per-scene appearance parameters (sampled once per scene)."""

    asphalt_shade: float = 0.32
    asphalt_noise: float = 0.02
    sky_top: Tuple[float, float, float] = (0.55, 0.68, 0.85)
    sky_bottom: Tuple[float, float, float] = (0.78, 0.82, 0.88)
    shoulder_color: Tuple[float, float, float] = (0.45, 0.42, 0.35)
    lane_half_width: float = 1.9
    lane_paint: Tuple[float, float, float] = (0.85, 0.85, 0.8)
    center_paint: Tuple[float, float, float] = (0.85, 0.75, 0.3)
    illumination: float = 1.0

    @staticmethod
    def sample(rng: np.random.Generator) -> "SceneStyle":
        return SceneStyle(
            asphalt_shade=float(rng.uniform(0.26, 0.4)),
            asphalt_noise=float(rng.uniform(0.01, 0.035)),
            lane_half_width=float(rng.uniform(1.7, 2.1)),
            illumination=float(rng.uniform(0.85, 1.1)),
        )


@dataclass
class RoadScene:
    """A full scene: style plus object placements."""

    objects: List[SceneObject] = field(default_factory=list)
    style: SceneStyle = field(default_factory=SceneStyle)


def _background(camera: Camera, style: SceneStyle, rng: np.random.Generator) -> np.ndarray:
    size = camera.image_size
    image = np.zeros((3, size, size), dtype=np.float32)
    horizon = int(round(camera.horizon_v))
    horizon = min(max(horizon, 1), size - 2)

    # Sky: vertical gradient.
    t = (np.arange(horizon, dtype=np.float32) / max(horizon - 1, 1))[:, None]
    top = np.asarray(style.sky_top, dtype=np.float32)[:, None, None]
    bottom = np.asarray(style.sky_bottom, dtype=np.float32)[:, None, None]
    image[:, :horizon, :] = top + (bottom - top) * t[None, :, :]

    # Ground rows: compute per-row forward distance, shade asphalt/shoulder.
    rows = np.arange(horizon, size, dtype=np.float32)
    z = camera.focal * camera.height / np.maximum(rows - camera.horizon_v, 0.5)
    cols = np.arange(size, dtype=np.float32)[None, :]
    lateral = (cols - camera.center_u) * z[:, None] / camera.focal

    asphalt = np.full((rows.size, size), style.asphalt_shade, dtype=np.float32)
    asphalt += rng.normal(0.0, style.asphalt_noise, size=asphalt.shape).astype(np.float32)
    ground = np.repeat(asphalt[None, :, :], 3, axis=0)

    road_half = style.lane_half_width + 1.2
    shoulder_mask = np.abs(lateral) > road_half
    shoulder = np.asarray(style.shoulder_color, dtype=np.float32)
    ground[:, shoulder_mask] = (
        shoulder[:, None]
        + rng.normal(0, 0.02, size=(3, int(shoulder_mask.sum()))).astype(np.float32)
    )

    # Lane edge lines (solid) and center line (dashed).
    line_width_m = 0.12
    for lane_x, color, dashed in (
        (-style.lane_half_width, style.lane_paint, False),
        (style.lane_half_width, style.lane_paint, False),
        (0.0, style.center_paint, True),
    ):
        mask = np.abs(lateral - lane_x) < line_width_m / 2.0
        if dashed:
            dash = (np.floor(z / 1.5).astype(int) % 2 == 0)
            mask &= dash[:, None]
        ground[:, mask] = np.asarray(color, dtype=np.float32)[:, None]

    image[:, horizon:, :] = ground
    return np.clip(image * style.illumination, 0.0, 1.0)


def _composite(image: np.ndarray, sprite_rgb: np.ndarray, sprite_alpha: np.ndarray,
               top: int, left: int) -> Optional[Tuple[int, int, int, int]]:
    """Alpha-composite a sprite; returns the clipped (x0, y0, x1, y1) box."""
    _, h, w = sprite_rgb.shape
    size_y, size_x = image.shape[1], image.shape[2]
    y0, x0 = max(top, 0), max(left, 0)
    y1, x1 = min(top + h, size_y), min(left + w, size_x)
    if y0 >= y1 or x0 >= x1:
        return None
    sy0, sx0 = y0 - top, x0 - left
    sy1, sx1 = sy0 + (y1 - y0), sx0 + (x1 - x0)
    alpha = sprite_alpha[sy0:sy1, sx0:sx1][None, :, :]
    region = image[:, y0:y1, x0:x1]
    image[:, y0:y1, x0:x1] = region * (1 - alpha) + sprite_rgb[:, sy0:sy1, sx0:sx1] * alpha
    return (x0, y0, x1, y1)


def render_scene(
    scene: RoadScene,
    camera: Camera,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, GroundTruth]:
    """Render a scene to an image and its ground truth.

    Camera roll, if any, is applied to the finished frame (and to the boxes
    as axis-aligned hulls of the rotated corners) — this implements the
    paper's hand-shake "rotation" challenge.
    """
    base_camera = camera.with_roll(0.0)
    image = _background(base_camera, scene.style, rng)
    boxes: List[Tuple[float, float, float, float]] = []
    labels: List[int] = []
    from ..detection.config import CLASS_NAMES

    for obj in sorted(scene.objects, key=lambda o: -o.z):
        if obj.z <= 1.0:
            continue
        sprite_rng = np.random.default_rng(obj.sprite_seed)
        size_h_m, size_w_m = obj.world_size()
        if obj.class_name in GROUND_CLASSES:
            # Painted on the road: vertical extent is the projected length.
            v_near, u_near = base_camera.project_ground(obj.z, obj.x)
            v_far, _ = base_camera.project_ground(obj.z + size_h_m, obj.x)
            px_h = max(v_near - v_far, 1.0)
            px_w = base_camera.horizontal_extent(obj.z + size_h_m / 2, size_w_m)
            top = v_far
            left = u_near - px_w / 2.0
        else:
            v_base, u_center = base_camera.project_ground(obj.z, obj.x)
            px_h = base_camera.vertical_extent(obj.z, size_h_m)
            px_w = base_camera.horizontal_extent(obj.z, size_w_m)
            top = v_base - px_h
            left = u_center - px_w / 2.0
        if px_h < MIN_BOX_PIXELS or px_w < MIN_BOX_PIXELS:
            continue
        sprite_rgb, sprite_alpha = render_sprite(
            obj.class_name, int(round(px_h)), int(round(px_w)), sprite_rng
        )
        box = _composite(image, sprite_rgb, sprite_alpha, int(round(top)), int(round(left)))
        if box is None:
            continue
        x0, y0, x1, y1 = box
        if (x1 - x0) < MIN_BOX_PIXELS or (y1 - y0) < MIN_BOX_PIXELS:
            continue
        boxes.append(((x0 + x1) / 2.0, (y0 + y1) / 2.0, x1 - x0, y1 - y0))
        labels.append(CLASS_NAMES.index(obj.class_name))

    if abs(camera.roll_degrees) > 1e-6:
        image = rotate_image(image, camera.roll_degrees)
        boxes = [_rotate_box(b, camera.roll_degrees, camera.image_size) for b in boxes]

    truth = GroundTruth(
        boxes_xywh=np.asarray(boxes, dtype=np.float32).reshape(-1, 4),
        labels=np.asarray(labels, dtype=np.int64),
    )
    return image, truth


def rotate_image(image: np.ndarray, degrees: float) -> np.ndarray:
    """Rotate a CHW image about its center (bilinear, edge-padded)."""
    _, h, w = image.shape
    angle = math.radians(degrees)
    cos_a, sin_a = math.cos(angle), math.sin(angle)
    cy, cx = (h - 1) / 2.0, (w - 1) / 2.0
    ys, xs = np.mgrid[0:h, 0:w].astype(np.float32)
    dy, dx = ys - cy, xs - cx
    src_y = cy + cos_a * dy + sin_a * dx
    src_x = cx - sin_a * dy + cos_a * dx
    src_y = np.clip(src_y, 0, h - 1)
    src_x = np.clip(src_x, 0, w - 1)
    y0 = np.floor(src_y).astype(int)
    x0 = np.floor(src_x).astype(int)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    wy = (src_y - y0)[None]
    wx = (src_x - x0)[None]
    out = (
        image[:, y0, x0] * (1 - wy) * (1 - wx)
        + image[:, y0, x1] * (1 - wy) * wx
        + image[:, y1, x0] * wy * (1 - wx)
        + image[:, y1, x1] * wy * wx
    )
    return out.astype(np.float32)


def _rotate_box(box_xywh: Tuple[float, float, float, float], degrees: float,
                image_size: int) -> Tuple[float, float, float, float]:
    """Axis-aligned hull of a box rotated about the image center."""
    cx, cy, w, h = box_xywh
    angle = math.radians(degrees)
    cos_a, sin_a = math.cos(angle), math.sin(angle)
    center = (image_size - 1) / 2.0
    corners = [
        (cx - w / 2, cy - h / 2),
        (cx + w / 2, cy - h / 2),
        (cx + w / 2, cy + h / 2),
        (cx - w / 2, cy + h / 2),
    ]
    rotated = []
    for px, py in corners:
        dx, dy = px - center, py - center
        # Inverse of the image-rotation sampling map so boxes track pixels.
        rx = center + cos_a * dx + sin_a * dy
        ry = center - sin_a * dx + cos_a * dy
        rotated.append((rx, ry))
    xs = [p[0] for p in rotated]
    ys = [p[1] for p in rotated]
    x0, x1 = max(min(xs), 0), min(max(xs), image_size)
    y0, y1 = max(min(ys), 0), min(max(ys), image_size)
    return ((x0 + x1) / 2, (y0 + y1) / 2, x1 - x0, y1 - y0)
