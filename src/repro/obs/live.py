"""Live in-process telemetry: ring-buffer time series + background sampler.

Everything the obs layer recorded before this module was post-hoc — the
metrics registry snapshots at manifest writes, the trace streams at span
close, and ``ServeStats`` was mirrored only when the server shut down
cleanly. :class:`LiveTelemetry` closes that gap for long-lived processes
(``repro.serve`` under traffic, the parallel training engine mid-sweep):

* :class:`Timeseries` — a fixed-capacity ring buffer of ``(t, value)``
  samples. Single-writer / multi-reader and lock-free: the writer fills
  the slot *before* publishing the new count, and readers rebuild a
  consistent chronological view from ``(count, capacity)`` alone, so the
  sampler thread never contends with dashboard readers.
* :class:`Rollup` — the windowed summary of a series (count / mean / min /
  max / p50 / p99 / last), deterministic for a fixed window of values.
* :class:`LiveTelemetry` — a registry of series fed by *probes*
  (callables returning ``{name: value}`` dicts, e.g.
  ``DetectionServer.probe``, ``WorkerPool.probe``, process RSS/CPU) and
  *derived* values (rates and ratios computed from series history, e.g.
  ``shed_rate``, ``respawns_per_min``). Each tick it polls every probe,
  appends samples, evaluates the :class:`~repro.obs.slo.SloEngine`, and
  runs registered snapshot writers (atomic JSON files, so a SIGKILLed
  process always leaves a readable last state).

The sampler runs on a daemon thread woken every ``interval_s`` via an
event (so :meth:`LiveTelemetry.stop` returns promptly), but the whole
pipeline is clock-injected: tests construct with a fake ``clock`` and
drive :meth:`LiveTelemetry.sample_once` directly — no thread, no sleeps,
fully deterministic rollups and SLO transitions.

Overhead contract: the established ``obs=None`` / ``perf=None`` idiom
extends to ``live=None`` — hosts thread the knob through and pay nothing
when it is ``None`` (no thread, no probes, no files). When enabled, each
tick is O(probes + rules) with bounded memory (every series is a fixed
ring), and the sampler observes its *own* tick duration into the
``live.tick_seconds`` series so the overhead budget is itself monitored.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .run import write_json_atomic
from .slo import SloEngine, SloRule

__all__ = ["Timeseries", "Rollup", "LiveConfig", "LiveTelemetry",
           "TrainerState", "TrainTelemetry",
           "LIVE_SNAPSHOT_NAME", "TRAIN_SNAPSHOT_NAME", "LIVE_SCHEMA_VERSION",
           "load_live_snapshot", "load_train_snapshot"]

LIVE_SNAPSHOT_NAME = "live.json"
TRAIN_SNAPSHOT_NAME = "train_live.json"
LIVE_SCHEMA_VERSION = 1


class Timeseries:
    """Fixed-capacity ring buffer of ``(time, value)`` samples.

    The concurrency contract is single-writer (the sampler thread),
    any-reader: :meth:`append` writes the slot arrays first and only then
    increments ``_count`` (an atomic int store under the GIL), so a reader
    that snapshots ``_count`` sees only fully written samples. Readers
    copy — they never hand out views into the ring.
    """

    def __init__(self, name: str, capacity: int = 512):
        if capacity < 2:
            raise ValueError("Timeseries capacity must be >= 2")
        self.name = name
        self.capacity = capacity
        self._times = np.full(capacity, np.nan, dtype=np.float64)
        self._values = np.full(capacity, np.nan, dtype=np.float64)
        self._count = 0  # total samples ever appended; published last

    def __len__(self) -> int:
        return min(self._count, self.capacity)

    @property
    def total_appended(self) -> int:
        return self._count

    def append(self, t: float, value: float) -> None:
        slot = self._count % self.capacity
        self._times[slot] = float(t)
        self._values[slot] = float(value)
        self._count += 1  # publish: readers below this count see full slots

    # -- readers --------------------------------------------------------
    def snapshot(self) -> Tuple[np.ndarray, np.ndarray]:
        """Chronological copies of (times, values) currently retained."""
        count = self._count  # one atomic read; ignore concurrent appends
        if count == 0:
            return (np.empty(0), np.empty(0))
        if count <= self.capacity:
            return (self._times[:count].copy(), self._values[:count].copy())
        head = count % self.capacity
        order = np.r_[head:self.capacity, 0:head]
        return (self._times[order].copy(), self._values[order].copy())

    def last(self) -> Optional[Tuple[float, float]]:
        count = self._count
        if count == 0:
            return None
        slot = (count - 1) % self.capacity
        return (float(self._times[slot]), float(self._values[slot]))

    def window(self, since_t: float) -> Tuple[np.ndarray, np.ndarray]:
        """Samples with ``t >= since_t`` (chronological copies)."""
        times, values = self.snapshot()
        mask = times >= since_t
        return times[mask], values[mask]

    def rate(self, window_s: float, now: float) -> Optional[float]:
        """Per-second growth of a cumulative-counter series over a window.

        Uses the first and last samples at or after ``now - window_s``;
        ``None`` until two samples span a positive time range. Counter
        resets (value decreasing, e.g. a restarted producer) clamp to 0
        rather than reporting a negative rate.
        """
        times, values = self.window(now - window_s)
        if len(times) < 2 or times[-1] <= times[0]:
            return None
        delta = float(values[-1] - values[0])
        return max(0.0, delta) / float(times[-1] - times[0])

    def rollup(self, window_s: Optional[float] = None,
               now: Optional[float] = None) -> "Rollup":
        if window_s is None:
            _, values = self.snapshot()
        else:
            if now is None:
                raise ValueError("window_s needs an explicit now")
            _, values = self.window(now - window_s)
        return Rollup.from_values(values)


@dataclass(frozen=True)
class Rollup:
    """Windowed summary of one series — deterministic for fixed values."""

    count: int
    mean: float
    min: float
    max: float
    p50: float
    p99: float
    last: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "Rollup":
        values = np.asarray(values, dtype=np.float64)
        values = values[np.isfinite(values)]
        if values.size == 0:
            nan = float("nan")
            return cls(0, nan, nan, nan, nan, nan, nan)
        return cls(
            count=int(values.size),
            mean=float(np.mean(values)),
            min=float(np.min(values)),
            max=float(np.max(values)),
            p50=float(np.percentile(values, 50)),
            p99=float(np.percentile(values, 99)),
            last=float(values[-1]),
        )

    def to_json(self) -> dict:
        def _safe(value: float):
            return value if np.isfinite(value) else None
        return {
            "count": self.count,
            "mean": _safe(self.mean),
            "min": _safe(self.min),
            "max": _safe(self.max),
            "p50": _safe(self.p50),
            "p99": _safe(self.p99),
            "last": _safe(self.last),
        }


@dataclass(frozen=True)
class LiveConfig:
    """Knobs of one :class:`LiveTelemetry` pipeline.

    ``rules`` accepts :class:`~repro.obs.slo.SloRule` instances or rule
    strings (``"p99_latency_ms < 120"``). ``window_s`` is the default
    rollup/rate window the derived values and snapshot rollups use.
    """

    interval_s: float = 0.25
    capacity: int = 512
    window_s: float = 10.0
    rules: Tuple[Union[SloRule, str], ...] = ()
    snapshot_recent: int = 64

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if self.capacity < 2:
            raise ValueError("capacity must be >= 2")
        if self.window_s <= 0:
            raise ValueError("window_s must be > 0")
        if self.snapshot_recent < 1:
            raise ValueError("snapshot_recent must be >= 1")

    def parsed_rules(self) -> Tuple[SloRule, ...]:
        return tuple(rule if isinstance(rule, SloRule) else SloRule.parse(rule)
                     for rule in self.rules)


class LiveTelemetry:
    """In-process telemetry pipeline: probes → ring series → SLOs → sinks.

    Parameters
    ----------
    directory:
        Where file sinks land (``live.json`` snapshot, ``alerts.jsonl``,
        ``live_trace.jsonl``). ``None`` keeps everything in memory.
    config:
        :class:`LiveConfig`; defaults are serving-friendly.
    clock:
        Monotonic-seconds callable. Tests inject a fake; the background
        thread paces itself with real time regardless (its waits are
        bounded by ``interval_s``), so a fake clock with ``start()`` is
        only sensible in tests that drive :meth:`sample_once` directly.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer` the SLO engine emits
        alert spans into. The default builds a private tracer writing
        ``live_trace.jsonl`` — the sampler runs on its own thread, so it
        must never share a (single-threaded) tracer with the host.
    """

    #: File the per-tick atomic snapshot lands in; subclasses override
    #: (the training pipeline writes ``train_live.json`` so one run
    #: directory can hold a serve snapshot and a train snapshot side by
    #: side).
    snapshot_name = LIVE_SNAPSHOT_NAME

    def __init__(self, directory: Optional[str] = None,
                 config: Optional[LiveConfig] = None,
                 clock: Callable[[], float] = time.monotonic,
                 tracer=None, metrics=None):
        from .trace import Tracer  # local: avoid import cycle at module load

        self.config = config or LiveConfig()
        self.directory = directory
        self.clock = clock
        self.metrics = metrics
        self._series: Dict[str, Timeseries] = {}
        self._probes: List[Tuple[str, Callable[[], Optional[dict]]]] = []
        self._derived: List[Tuple[str, Callable[["LiveTelemetry", float],
                                                Optional[float]]]] = []
        self._snapshot_writers: List[Callable[[], None]] = []
        self._on_sample: List[Callable[[], None]] = []
        self.ticks = 0

        alerts_path = None
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            alerts_path = os.path.join(directory, "alerts.jsonl")
            if tracer is None:
                tracer = Tracer(
                    sink_path=os.path.join(directory, "live_trace.jsonl"),
                    buffer_limit=1)
        self.tracer = tracer
        self.engine = SloEngine(self.config.parsed_rules(),
                                alerts_path=alerts_path, tracer=tracer,
                                metrics=metrics)

        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()

    # -- registration ---------------------------------------------------
    def series(self, name: str) -> Timeseries:
        """Get-or-create the named ring-buffer series."""
        ts = self._series.get(name)
        if ts is None:
            ts = self._series[name] = Timeseries(name, self.config.capacity)
        return ts

    def series_names(self) -> List[str]:
        return sorted(self._series)

    def add_probe(self, prefix: str,
                  fn: Callable[[], Optional[dict]]) -> None:
        """Register a sampled source. Each tick ``fn()`` returns a flat
        ``{name: scalar}`` dict recorded as ``{prefix}.{name}`` samples
        (``None`` or a raising probe skips the tick — a dying host must
        not take the sampler down with it)."""
        self._probes.append((prefix, fn))

    def add_derived(self, name: str,
                    fn: Callable[["LiveTelemetry", float],
                                 Optional[float]]) -> None:
        """Register a computed value — ``fn(live, now)`` runs after the
        probes each tick; a non-None result is recorded under ``name``
        and visible to SLO rules."""
        self._derived.append((name, fn))

    def add_snapshot_writer(self, fn: Callable[[], None]) -> None:
        """Register an extra per-tick snapshot callback (e.g. the serve
        layer's atomic ``serve_stats.json`` mirror)."""
        self._snapshot_writers.append(fn)

    def on_sample(self, fn: Callable[[], None]) -> None:
        """Register a per-tick side effect that runs before snapshots."""
        self._on_sample.append(fn)

    # -- sampling -------------------------------------------------------
    def sample_once(self, now: Optional[float] = None) -> Dict[str, float]:
        """One sampler tick; returns the values observed this tick.

        Deterministic under an injected clock: probes → derived values →
        SLO evaluation → mirrors/snapshots, in registration order.
        """
        tick_start = time.perf_counter()
        if now is None:
            now = self.clock()
        observed: Dict[str, float] = {}
        for prefix, fn in self._probes:
            try:
                sample = fn()
            except Exception:
                continue  # a failing probe must never kill the sampler
            if not sample:
                continue
            for name, value in sample.items():
                try:
                    value = float(value)
                except (TypeError, ValueError):
                    continue
                full = f"{prefix}.{name}" if prefix else name
                self.series(full).append(now, value)
                observed[full] = value
        for name, fn in self._derived:
            try:
                value = fn(self, now)
            except Exception:
                continue
            if value is None:
                continue
            self.series(name).append(now, float(value))
            observed[name] = float(value)
        self.ticks += 1
        self.engine.evaluate(now, observed)
        for fn in self._on_sample:
            try:
                fn()
            except Exception:
                continue
        self.series("live.tick_seconds").append(
            now, time.perf_counter() - tick_start)
        self._write_snapshot(now)
        return observed

    def rate(self, name: str, now: float,
             window_s: Optional[float] = None) -> Optional[float]:
        ts = self._series.get(name)
        if ts is None:
            return None
        return ts.rate(window_s or self.config.window_s, now)

    def last(self, name: str) -> Optional[float]:
        ts = self._series.get(name)
        sample = ts.last() if ts is not None else None
        return sample[1] if sample is not None else None

    # -- snapshot -------------------------------------------------------
    def snapshot(self, now: Optional[float] = None) -> dict:
        """JSON-ready state: per-series rollups + recent samples + SLOs."""
        if now is None:
            now = self.clock()
        series = {}
        for name in self.series_names():
            ts = self._series[name]
            times, values = ts.snapshot()
            recent = self.config.snapshot_recent
            series[name] = {
                "rollup": ts.rollup().to_json(),
                "window": ts.rollup(self.config.window_s, now).to_json(),
                "recent": [[round(float(t), 6), float(v)]
                           for t, v in zip(times[-recent:], values[-recent:])],
            }
        return {
            "schema_version": LIVE_SCHEMA_VERSION,
            "updated_unix": time.time(),
            "sampled_t": now,
            "ticks": self.ticks,
            "interval_s": self.config.interval_s,
            "series": series,
            "slo": self.engine.snapshot(),
        }

    def _write_snapshot(self, now: float) -> None:
        if self.directory is not None:
            write_json_atomic(os.path.join(self.directory, self.snapshot_name),
                              self.snapshot(now))
        for fn in self._snapshot_writers:
            try:
                fn()
            except Exception:
                continue

    # -- background thread ---------------------------------------------
    def start(self) -> "LiveTelemetry":
        """Start the daemon sampler thread (idempotent)."""
        if self._thread is not None:
            return self
        self._stop_event.clear()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-obs-live-sampler")
        self._thread.start()
        return self

    def stop(self, final_sample: bool = True) -> None:
        """Stop the sampler; by default take one last sample so the final
        state of a cleanly closed host is on disk."""
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop_event.set()
            thread.join(timeout=max(5.0, 4 * self.config.interval_s))
        if final_sample:
            self.sample_once()
        if self.tracer is not None:
            self.tracer.flush()

    def _run(self) -> None:
        while not self._stop_event.wait(self.config.interval_s):
            try:
                self.sample_once()
            except Exception:
                # Telemetry must never crash the host; skip the tick.
                continue

    def __enter__(self) -> "LiveTelemetry":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def load_live_snapshot(path: str) -> dict:
    """Read a ``live.json`` snapshot (atomic writes make this torn-free)."""
    with open(path) as handle:
        return json.load(handle)


def load_train_snapshot(path: str) -> dict:
    """Read a ``train_live.json`` snapshot (same atomic-write contract)."""
    return load_live_snapshot(path)


# ----------------------------------------------------------------------
# Training-side telemetry
# ----------------------------------------------------------------------

class TrainerState:
    """Mutable per-trainer ledger: the step loop writes, the sampler polls.

    The training loop calls :meth:`step` / :meth:`checkpoint_saved` /
    :meth:`recovery` — plain attribute writes on already-computed floats,
    so attaching telemetry can never perturb the numerics (the bit-identity
    tests hold it to that). :meth:`probe` is the
    :meth:`LiveTelemetry.add_probe` target; reads are GIL-atomic snapshots,
    consistent enough for sampling.
    """

    def __init__(self, name: str, total_steps: int,
                 clock: Callable[[], float]):
        self.name = name
        self.total_steps = int(total_steps)
        self.clock = clock
        self.steps_done = 0
        self.eot_epoch = 0
        self.recoveries = 0
        self.checkpoints = 0
        self.last_checkpoint_t: Optional[float] = None
        self.last_metrics: Dict[str, float] = {}
        self.finished = False

    # -- writers (training loop) ---------------------------------------
    def step(self, step: int, **metrics: float) -> None:
        """Record one completed optimizer step. Canonical gauge names the
        SLO catalogue keys on: ``loss`` and ``grad_norm``; extras (e.g.
        ``d_loss``, ``attack``) ride along under their own names."""
        self.steps_done = int(step) + 1
        cleaned = {}
        for key, value in metrics.items():
            try:
                cleaned[key] = float(value)
            except (TypeError, ValueError):
                continue
        self.last_metrics = cleaned

    def checkpoint_saved(self) -> None:
        self.checkpoints += 1
        self.last_checkpoint_t = self.clock()

    def recovery(self) -> None:
        self.recoveries += 1

    def set_epoch(self, eot_epoch: int) -> None:
        self.eot_epoch = int(eot_epoch)

    def finish(self) -> None:
        self.finished = True

    # -- reader (sampler) ----------------------------------------------
    def probe(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "steps_done": float(self.steps_done),
            "total_steps": float(self.total_steps),
            "eot_epoch": float(self.eot_epoch),
            "recoveries": float(self.recoveries),
            "checkpoints": float(self.checkpoints),
            "finished": 1.0 if self.finished else 0.0,
        }
        if self.total_steps > 0:
            out["progress"] = self.steps_done / self.total_steps
        if self.last_checkpoint_t is not None:
            out["checkpoint_age_s"] = max(
                0.0, self.clock() - self.last_checkpoint_t)
        out.update(self.last_metrics)
        return out


def _train_steps_per_s(live: "LiveTelemetry", now: float) -> Optional[float]:
    """Derived SLO input: optimizer steps per second over the window."""
    return live.rate("train.steps_done", now)


class TrainTelemetry(LiveTelemetry):
    """Training-side live telemetry: trainer/pool/guard probes → SLOs.

    The training analogue of the serve wiring (DESIGN.md §12 → §14): one
    instance is threaded through a training entry point (``live=`` on
    :func:`repro.attack.trainer.train_patch_attack`,
    :func:`repro.gan.trainer.train_gan`,
    :func:`repro.detection.train.train_detector` — ``live=None`` costs
    nothing), trainers :meth:`attach` themselves and register their guard /
    worker-pool / workspace probes, and each tick lands in ring-buffer
    series, the SLO engine, and an atomic SIGKILL-durable
    ``train_live.json``.

    The **primary** trainer — the first to attach — additionally publishes
    under the flat ``train.*`` namespace (``train.steps_done``,
    ``train.loss``, ``train.grad_norm``, ``train.checkpoint_age_s``) with
    the derived ``train.steps_per_s`` rate, which is what the stall /
    divergence SLO catalogue keys on; every trainer (primary included)
    also publishes under ``train.{name}.*`` so a nested warm-up
    (attack → gan) stays distinguishable.

    ``metrics`` enables delta-based mirroring into the registry on every
    tick: cumulative trainer counters (steps, checkpoints, recoveries)
    fold in as deltas and the final mirror at :meth:`stop` tops the totals
    up exactly — periodic + final never double-count.
    """

    snapshot_name = TRAIN_SNAPSHOT_NAME

    def __init__(self, directory: Optional[str] = None,
                 config: Optional[LiveConfig] = None,
                 clock: Callable[[], float] = time.monotonic,
                 tracer=None, metrics=None):
        super().__init__(directory=directory, config=config, clock=clock,
                         tracer=tracer, metrics=metrics)
        self.trainers: Dict[str, TrainerState] = {}
        self.primary: Optional[str] = None
        self._probe_prefixes: set = set()
        self._mirrored: Dict[str, float] = {}
        if metrics is not None:
            self.add_snapshot_writer(self.mirror_stats)

    # -- registration ---------------------------------------------------
    def attach(self, name: str, total_steps: int) -> TrainerState:
        """Register one trainer; returns the ledger its step loop updates.

        Re-attaching a name (e.g. a retried phase) reuses the existing
        state so counters stay cumulative across attempts.
        """
        state = self.trainers.get(name)
        if state is not None:
            return state
        state = TrainerState(name, total_steps, self.clock)
        self.trainers[name] = state
        self.add_probe(f"train.{name}", state.probe)
        if self.primary is None:
            self.primary = name
            self.add_probe("train", state.probe)
            self.add_derived("train.steps_per_s", _train_steps_per_s)
        return state

    def ensure_probe(self, prefix: str,
                     fn: Callable[[], Optional[dict]]) -> None:
        """Register a probe once per prefix — trainers re-entered across
        divergence retries (and nested trainers sharing process-wide
        sources like ``proc`` / ``workspace``) must not double-sample."""
        if prefix in self._probe_prefixes:
            return
        self._probe_prefixes.add(prefix)
        self.add_probe(prefix, fn)

    def register_host_probes(self) -> None:
        """Process-wide sources every trainer shares: RSS/CPU and conv
        workspace occupancy. Idempotent, so a nested warm-up attaching
        after its parent does not double-sample them. Imported lazily —
        :mod:`repro.obs` must not depend on :mod:`repro.nn` at load."""
        from ..nn.functional import conv_workspace_totals
        from ..nn.quant import quant_runtime_totals
        from ..perf import process_stats
        self.ensure_probe("proc", process_stats)
        self.ensure_probe("workspace", conv_workspace_totals)
        self.ensure_probe("quant", quant_runtime_totals)

    # -- metrics mirroring ---------------------------------------------
    def mirror_stats(self) -> None:
        """Fold trainer-ledger deltas into the metrics registry.

        Runs on every sampler tick (snapshot-writer hook) and once more on
        :meth:`stop`'s final sample; delta accounting makes the sum land
        exactly on the cumulative totals however many ticks happened.
        """
        if self.metrics is None:
            return
        for name, state in self.trainers.items():
            for counter, value in (("steps", state.steps_done),
                                   ("checkpoints", state.checkpoints),
                                   ("recoveries", state.recoveries)):
                key = f"train.{name}.{counter}"
                delta = value - self._mirrored.get(key, 0)
                if delta > 0:
                    self.metrics.counter(key).inc(delta)
                    self._mirrored[key] = value
            for gauge, value in state.last_metrics.items():
                self.metrics.gauge(f"train.{name}.{gauge}").set(value)

    # -- snapshot -------------------------------------------------------
    def snapshot(self, now: Optional[float] = None) -> dict:
        doc = super().snapshot(now)
        doc["trainers"] = {
            name: {
                "total_steps": state.total_steps,
                "steps_done": state.steps_done,
                "checkpoints": state.checkpoints,
                "recoveries": state.recoveries,
                "finished": state.finished,
                "primary": name == self.primary,
            }
            for name, state in sorted(self.trainers.items())
        }
        return doc
