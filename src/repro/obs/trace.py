"""Hierarchical span tracing with a buffered JSONL sink.

A span is one timed region of a run — a training phase, a rendered video,
a batched detector forward. Spans nest: the tracer keeps an open-span
stack, so a span started while another is open becomes its child, and one
trace covers train → render → eval end to end when the same
:class:`~repro.obs.run.Run` is threaded through all stages.

Spans carry any-type attributes (set at open) and float counters
(accumulated while open), are assigned ids in start order, and are written
to the sink as JSON lines when they *close* — so the file order is
completion order, and reconstruction (:func:`load_trace` /
:func:`build_tree`) re-sorts by id. The sink is buffered but bounded:
every ``buffer_limit`` closed spans it appends and flushes, so a killed
process loses at most one buffer of spans, never the whole trace.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["SpanRecord", "SpanNode", "Tracer", "load_trace", "build_tree"]

TRACE_SCHEMA_VERSION = 1


def _json_safe(value: Any) -> Any:
    """Best-effort JSON coercion for any-type span attributes."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    try:
        return float(value)  # numpy scalars
    except (TypeError, ValueError):
        return repr(value)


@dataclass
class SpanRecord:
    """One closed (or still-open) span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start_s: float                     # seconds since the tracer's origin
    end_s: Optional[float] = None
    status: str = "open"               # open | ok | error
    attrs: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)

    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def to_json(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "status": self.status,
            "attrs": {k: _json_safe(v) for k, v in self.attrs.items()},
            "counters": dict(self.counters),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "SpanRecord":
        return cls(
            span_id=int(payload["span_id"]),
            parent_id=(None if payload.get("parent_id") is None
                       else int(payload["parent_id"])),
            name=str(payload["name"]),
            start_s=float(payload["start_s"]),
            end_s=(None if payload.get("end_s") is None
                   else float(payload["end_s"])),
            status=str(payload.get("status", "ok")),
            attrs=dict(payload.get("attrs", {})),
            counters={k: float(v) for k, v in payload.get("counters", {}).items()},
        )


@dataclass
class SpanNode:
    """A reconstructed span with its children, in start order."""

    record: SpanRecord
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.record.name

    def walk(self) -> Iterator["SpanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


class Tracer:
    """Collects spans for one run and streams them to a JSONL sink.

    ``sink_path=None`` keeps everything in memory (tests, ephemeral runs).
    The tracer is single-threaded by design — the whole experiment stack
    is — so the open-span stack needs no locking.
    """

    def __init__(self, sink_path: Optional[str] = None, buffer_limit: int = 64):
        if buffer_limit < 1:
            raise ValueError("buffer_limit must be >= 1")
        self.sink_path = sink_path
        self.buffer_limit = buffer_limit
        self.spans: List[SpanRecord] = []
        self._stack: List[SpanRecord] = []
        self._pending: List[SpanRecord] = []
        self._next_id = 0
        self._origin = time.perf_counter()

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[SpanRecord]:
        """Open one span; nests under the currently open span."""
        record = SpanRecord(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            start_s=time.perf_counter() - self._origin,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(record)
        self._stack.append(record)
        try:
            yield record
            record.status = "ok"
        except BaseException:
            record.status = "error"
            raise
        finally:
            record.end_s = time.perf_counter() - self._origin
            self._stack.pop()
            self._pending.append(record)
            if len(self._pending) >= self.buffer_limit:
                self.flush()

    def current(self) -> Optional[SpanRecord]:
        return self._stack[-1] if self._stack else None

    def add(self, counter: str, amount: float = 1.0) -> None:
        """Accumulate a counter on the innermost open span (no-op outside)."""
        record = self.current()
        if record is not None:
            record.counters[counter] = record.counters.get(counter, 0.0) + float(amount)

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span (no-op outside)."""
        record = self.current()
        if record is not None:
            record.attrs.update(attrs)

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Append buffered closed spans to the sink and fsync-flush it."""
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        if self.sink_path is None:
            return
        with open(self.sink_path, "a") as handle:
            for record in pending:
                handle.write(json.dumps(record.to_json(), sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())


def load_trace(path: str) -> List[SpanRecord]:
    """Read a JSONL trace back into records, sorted into start (id) order.

    Tolerates a torn final line (the process died mid-write); everything
    before it is still recovered.
    """
    records: List[SpanRecord] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(SpanRecord.from_json(json.loads(line)))
            except (ValueError, KeyError):
                continue
    records.sort(key=lambda r: r.span_id)
    return records


def build_tree(spans: List[SpanRecord]) -> List[SpanNode]:
    """Reconstruct the span forest (roots in start order).

    A span whose parent is missing from ``spans`` (lost buffer tail)
    is promoted to a root rather than dropped.
    """
    nodes = {record.span_id: SpanNode(record) for record in spans}
    roots: List[SpanNode] = []
    for record in sorted(spans, key=lambda r: r.span_id):
        node = nodes[record.span_id]
        parent = (nodes.get(record.parent_id)
                  if record.parent_id is not None else None)
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    return roots
