"""`BENCH_history.jsonl` trend analysis: load, summarize, detect regressions.

Every bench script appends one manifest-stamped line per invocation to the
append-only history file (PR 3), and since PR 6 those appends are
fsync-durable — but nothing ever *read* the trajectory back. This module
is the reader: a tolerant loader, per-benchmark trend summaries for the
dashboard, and a robust regression detector the ``bench_* --check`` gates
call in addition to their single-number committed-report comparison.

The detector is deliberately robust statistics, not a mean/σ band: bench
numbers on shared CI boxes have heavy-tailed noise (one loaded run would
poison a mean), so the baseline is the **median** of the trailing window
and the band is scaled **MAD** (median absolute deviation, ×1.4826 to be
σ-consistent under normality) with a relative floor — a window of
identical values must not produce a zero-width band that fails on the
first rounding wobble. With fewer than ``min_points`` trailing samples
the verdict is ``"insufficient"`` and the gate passes: a young history
cannot veto a change.

Loader contract (satellite fix): files written before the fsync-durable
append can end in a torn or non-JSON line; :func:`load_history` *skips
and counts* such lines instead of raising, so one corrupt byte never
bricks every ``--check`` gate downstream.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["HistoryLoadResult", "TrendVerdict", "load_history",
           "metric_series", "detect_regression", "check_trend",
           "trend_summary"]

#: σ-consistency constant for MAD under a normal distribution.
MAD_SCALE = 1.4826
#: Default band half-width in scaled MADs.
DEFAULT_N_MADS = 4.0
#: Relative floor on the band half-width (fraction of |median|) so an
#: all-identical window still tolerates small wobble.
DEFAULT_REL_FLOOR = 0.10
#: Default trailing-window length and the minimum points to judge at all.
DEFAULT_WINDOW = 8
DEFAULT_MIN_POINTS = 4


@dataclass
class HistoryLoadResult:
    """Parsed history lines plus the corruption tally."""

    records: List[dict]
    bad_lines: int
    path: str

    def benchmarks(self) -> List[str]:
        return sorted({str(r.get("benchmark", "?")) for r in self.records})


def load_history(path: str, benchmark: Optional[str] = None) -> HistoryLoadResult:
    """Read a ``BENCH_history.jsonl`` file, skipping unparseable lines.

    A line counts as bad when it is not valid JSON or not a JSON object
    (torn tail from a pre-durability writer, editor droppings, partial
    copies). Blank lines are ignored silently — they carry no data and
    appear in hand-edited files.
    """
    records: List[dict] = []
    bad = 0
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                bad += 1
                continue
            if not isinstance(record, dict):
                bad += 1
                continue
            if benchmark is not None and record.get("benchmark") != benchmark:
                continue
            records.append(record)
    return HistoryLoadResult(records=records, bad_lines=bad, path=path)


def metric_series(history: HistoryLoadResult, benchmark: str,
                  metric: str) -> List[float]:
    """Chronological values of one metric for one benchmark (file order —
    the file is append-only, so file order is time order)."""
    values: List[float] = []
    for record in history.records:
        if record.get("benchmark") != benchmark:
            continue
        value = record.get(metric)
        if isinstance(value, (int, float)) and np.isfinite(value):
            values.append(float(value))
    return values


@dataclass
class TrendVerdict:
    """Outcome of one regression check.

    ``status`` is ``"ok"``, ``"regression"``, or ``"insufficient"`` (not
    enough trailing points to judge — treated as passing by the gates).
    """

    status: str
    benchmark: str
    metric: str
    direction: str              # "higher" | "lower" is better
    value: Optional[float]
    median: Optional[float] = None
    mad: Optional[float] = None
    band: Optional[float] = None
    points: int = 0
    bad_lines: int = 0

    @property
    def ok(self) -> bool:
        return self.status != "regression"

    def describe(self) -> str:
        label = f"{self.benchmark}.{self.metric}"
        if self.status == "insufficient":
            return (f"trend {label}: insufficient history "
                    f"({self.points} points) — pass")
        bound = ("floor" if self.direction == "higher" else "ceiling")
        limit = (self.median - self.band if self.direction == "higher"
                 else self.median + self.band)
        verdict = "OK" if self.ok else "REGRESSION"
        return (f"trend {label}: {verdict}  value={self.value:g}  "
                f"median={self.median:g}  mad={self.mad:g}  "
                f"{bound}={limit:g}  ({self.points} points"
                + (f", {self.bad_lines} bad lines skipped" if self.bad_lines
                   else "") + ")")


def detect_regression(trailing: Sequence[float], value: float,
                      direction: str = "higher",
                      n_mads: float = DEFAULT_N_MADS,
                      rel_floor: float = DEFAULT_REL_FLOOR,
                      min_points: int = DEFAULT_MIN_POINTS) -> TrendVerdict:
    """Judge ``value`` against the trailing window with median/MAD bands.

    ``direction="higher"`` means larger is better (fps, steps/sec) and a
    regression is ``value < median - band``; ``"lower"`` means smaller is
    better (latency) and a regression is ``value > median + band``, where
    ``band = max(n_mads * MAD_SCALE * mad, rel_floor * |median|)``.
    """
    if direction not in ("higher", "lower"):
        raise ValueError(f"direction must be 'higher' or 'lower', "
                         f"got {direction!r}")
    trailing = [float(v) for v in trailing if np.isfinite(v)]
    if len(trailing) < min_points:
        return TrendVerdict(status="insufficient", benchmark="", metric="",
                            direction=direction, value=value,
                            points=len(trailing))
    window = np.asarray(trailing, dtype=np.float64)
    median = float(np.median(window))
    mad = float(np.median(np.abs(window - median)))
    band = max(n_mads * MAD_SCALE * mad, rel_floor * abs(median))
    if direction == "higher":
        regressed = value < median - band
    else:
        regressed = value > median + band
    return TrendVerdict(status="regression" if regressed else "ok",
                        benchmark="", metric="", direction=direction,
                        value=value, median=median, mad=mad, band=band,
                        points=len(trailing))


def check_trend(path: str, benchmark: str, metric: str, value: float,
                direction: str = "higher", window: int = DEFAULT_WINDOW,
                n_mads: float = DEFAULT_N_MADS,
                rel_floor: float = DEFAULT_REL_FLOOR,
                min_points: int = DEFAULT_MIN_POINTS) -> TrendVerdict:
    """Check a fresh measurement against the trailing committed history.

    The window is the last ``window`` recorded values of ``metric`` for
    ``benchmark`` (the fresh ``value`` itself is *not* in the file yet —
    bench scripts append after gating).
    """
    history = load_history(path, benchmark=benchmark)
    values = metric_series(history, benchmark, metric)[-window:]
    verdict = detect_regression(values, value, direction=direction,
                                n_mads=n_mads, rel_floor=rel_floor,
                                min_points=min_points)
    verdict.benchmark = benchmark
    verdict.metric = metric
    verdict.bad_lines = history.bad_lines
    return verdict


def trend_summary(path: str, window: int = DEFAULT_WINDOW) -> dict:
    """Dashboard view: per-benchmark, per-metric trailing rollups.

    Summarizes every numeric field that appears in a benchmark's records
    (excluding bookkeeping fields), with median/MAD/latest over the
    trailing window.
    """
    skip = {"unix_time", "status", "schema_version"}
    history = load_history(path)
    out: Dict[str, Dict[str, dict]] = {}
    for benchmark in history.benchmarks():
        metrics: Dict[str, dict] = {}
        names = set()
        for record in history.records:
            if record.get("benchmark") != benchmark:
                continue
            names.update(
                name for name, value in record.items()
                if name not in skip and isinstance(value, (int, float))
                and not isinstance(value, bool))
        for name in sorted(names):
            values = metric_series(history, benchmark, name)[-window:]
            if not values:
                continue
            window_arr = np.asarray(values, dtype=np.float64)
            median = float(np.median(window_arr))
            metrics[name] = {
                "latest": values[-1],
                "median": median,
                "mad": float(np.median(np.abs(window_arr - median))),
                "min": float(window_arr.min()),
                "max": float(window_arr.max()),
                "points": len(values),
            }
        out[benchmark] = metrics
    return {"path": history.path, "bad_lines": history.bad_lines,
            "benchmarks": out}
