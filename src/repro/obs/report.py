"""Loading, rendering, and diffing run telemetry (manifest + trace pairs).

The analysis side of :mod:`repro.obs`: :func:`load_run` reads a run
directory back into memory, :func:`render_run` draws the per-stage
latency/throughput tree, and :func:`diff_runs` compares two runs —
Δ wall-clock per span path, Δ deterministic metric values (counters and
gauges; a same-seed re-run must show zero), histogram count drift, exit
status, and recovery events. ``scripts/obs_report.py`` is a thin CLI over
these functions; tests drive them directly.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .run import MANIFEST_NAME
from .trace import SpanNode, SpanRecord, build_tree, load_trace

__all__ = [
    "LoadedRun",
    "load_run",
    "render_run",
    "span_path_totals",
    "metric_deltas",
    "diff_runs",
    "render_diff",
]

#: Counter-name prefixes that identify fault-recovery activity.
RECOVERY_PREFIXES = ("events.divergence_recovery", "events.checkpoint_restore",
                     "guard.divergence")


@dataclass
class LoadedRun:
    """One run's manifest plus its reconstructed span forest."""

    path: str
    manifest: dict
    spans: List[SpanRecord] = field(default_factory=list)
    roots: List[SpanNode] = field(default_factory=list)

    @property
    def run_id(self) -> str:
        return str(self.manifest.get("run_id", "?"))

    @property
    def status(self) -> str:
        return str(self.manifest.get("status", "?"))

    def metrics(self) -> dict:
        return self.manifest.get("metrics", {}) or {}

    def recovery_counters(self) -> Dict[str, float]:
        counters = self.metrics().get("counters", {})
        return {name: value for name, value in counters.items()
                if name.startswith(RECOVERY_PREFIXES)}


def load_run(path: str) -> LoadedRun:
    """Load a run directory (or a manifest path) into a :class:`LoadedRun`.

    The trace file named by the manifest is optional — a run killed before
    its first flush still loads, with an empty span forest.
    """
    if os.path.isdir(path):
        manifest_path = os.path.join(path, MANIFEST_NAME)
    else:
        manifest_path = path
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    directory = os.path.dirname(os.path.abspath(manifest_path))
    trace_path = os.path.join(directory, manifest.get("trace_path") or "trace.jsonl")
    spans: List[SpanRecord] = []
    if os.path.exists(trace_path):
        spans = load_trace(trace_path)
    return LoadedRun(path=directory, manifest=manifest, spans=spans,
                     roots=build_tree(spans))


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

def _span_line(record: SpanRecord) -> str:
    parts = [f"{record.duration_s() * 1e3:9.1f} ms"]
    items = record.counters.get("items")
    if items and record.duration_s() > 0:
        parts.append(f"{items:.0f} items ({items / record.duration_s():.0f}/s)")
    else:
        extra = " ".join(f"{k}={v:g}" for k, v in sorted(record.counters.items()))
        if extra:
            parts.append(extra)
    attrs = " ".join(f"{k}={v}" for k, v in sorted(record.attrs.items()))
    if attrs:
        parts.append(f"[{attrs}]")
    if record.status != "ok":
        parts.append(f"!{record.status}")
    return "  ".join(parts)


def _render_node(node: SpanNode, prefix: str, is_last: bool,
                 lines: List[str]) -> None:
    connector = "└─ " if is_last else "├─ "
    lines.append(f"{prefix}{connector}{node.name:<24s} {_span_line(node.record)}")
    child_prefix = prefix + ("   " if is_last else "│  ")
    for index, child in enumerate(node.children):
        _render_node(child, child_prefix, index == len(node.children) - 1, lines)


def render_run(run: LoadedRun) -> str:
    """Human-readable per-stage latency/throughput tree for one run."""
    manifest = run.manifest
    lines = [
        f"run {run.run_id}  status={run.status}  "
        f"config={manifest.get('config_digest', '?')}",
        f"seeds: {manifest.get('seeds', {})}",
    ]
    host = manifest.get("host", {})
    if host:
        lines.append(f"host: {host.get('hostname', '?')}  "
                     f"python {host.get('python', '?')}  "
                     f"numpy {host.get('numpy', '?')}")
    if not run.roots:
        lines.append("(no spans recorded)")
    for root in run.roots:
        lines.append(f"{root.name:<27s} {_span_line(root.record)}")
        for index, child in enumerate(root.children):
            _render_node(child, "", index == len(root.children) - 1, lines)
    counters = run.metrics().get("counters", {})
    if counters:
        lines.append("counters:")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name} = {value:g}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------

def span_path_totals(run: LoadedRun) -> Dict[str, Tuple[float, int]]:
    """Aggregate (seconds, calls) per root-to-span name path.

    Paths are slash-joined names (``attack.train/attack.steps``); repeated
    spans with the same path — e.g. one ``eval.render`` per protocol run —
    sum, which is what makes two runs with different per-call jitter
    comparable stage by stage.
    """
    totals: Dict[str, Tuple[float, int]] = {}

    def visit(node: SpanNode, parent_path: str) -> None:
        path = f"{parent_path}/{node.name}" if parent_path else node.name
        seconds, calls = totals.get(path, (0.0, 0))
        totals[path] = (seconds + node.record.duration_s(), calls + 1)
        for child in node.children:
            visit(child, path)

    for root in run.roots:
        visit(root, "")
    return totals


def _is_nan(value) -> bool:
    return isinstance(value, float) and math.isnan(value)


def metric_deltas(a: LoadedRun, b: LoadedRun) -> dict:
    """Instrument-by-instrument comparison of two runs' metric snapshots.

    Counters and gauges are the deterministic surface: for a fixed seed
    they must match exactly, so ``deterministic_equal`` is the headline
    verdict. Histograms compare observation counts only (their sums are
    wall-clock and legitimately differ run to run).
    """
    metrics_a, metrics_b = a.metrics(), b.metrics()
    out = {"counters": {}, "gauges": {}, "histogram_counts": {}}
    for kind in ("counters", "gauges"):
        values_a = metrics_a.get(kind, {})
        values_b = metrics_b.get(kind, {})
        for name in sorted(set(values_a) | set(values_b)):
            va, vb = values_a.get(name), values_b.get(name)
            equal = (va == vb) or (_is_nan(va) and _is_nan(vb))
            out[kind][name] = {
                "a": va, "b": vb,
                "delta": ((vb or 0.0) - (va or 0.0)
                          if not (_is_nan(va) or _is_nan(vb)) else None),
                "equal": equal,
            }
    hists_a = metrics_a.get("histograms", {})
    hists_b = metrics_b.get("histograms", {})
    for name in sorted(set(hists_a) | set(hists_b)):
        count_a = (hists_a.get(name) or {}).get("count", 0)
        count_b = (hists_b.get(name) or {}).get("count", 0)
        out["histogram_counts"][name] = {
            "a": count_a, "b": count_b, "delta": count_b - count_a,
            "equal": count_a == count_b,
        }
    out["deterministic_equal"] = all(
        entry["equal"]
        for kind in ("counters", "gauges")
        for entry in out[kind].values()
    )
    return out


def diff_runs(a: LoadedRun, b: LoadedRun) -> dict:
    """Full two-run comparison: spans, metrics, status, recovery events."""
    totals_a = span_path_totals(a)
    totals_b = span_path_totals(b)
    spans = {}
    for path in sorted(set(totals_a) | set(totals_b)):
        seconds_a, calls_a = totals_a.get(path, (0.0, 0))
        seconds_b, calls_b = totals_b.get(path, (0.0, 0))
        spans[path] = {
            "a_seconds": seconds_a, "b_seconds": seconds_b,
            "delta_seconds": seconds_b - seconds_a,
            "a_calls": calls_a, "b_calls": calls_b,
        }
    return {
        "a": {"run_id": a.run_id, "status": a.status, "path": a.path},
        "b": {"run_id": b.run_id, "status": b.status, "path": b.path},
        "status_equal": a.status == b.status,
        "config_equal": (a.manifest.get("config_digest")
                         == b.manifest.get("config_digest")),
        "spans": spans,
        "metrics": metric_deltas(a, b),
        "recovery": {"a": a.recovery_counters(), "b": b.recovery_counters()},
    }


def render_diff(diff: dict) -> str:
    """Human-readable rendering of a :func:`diff_runs` result."""
    lines = [
        f"A: {diff['a']['run_id']}  status={diff['a']['status']}",
        f"B: {diff['b']['run_id']}  status={diff['b']['status']}",
        f"config digests {'match' if diff['config_equal'] else 'DIFFER'}; "
        f"exit status {'matches' if diff['status_equal'] else 'DIFFERS'}",
        "",
        f"{'span path':<44s} {'A ms':>10s} {'B ms':>10s} {'Δ ms':>10s} {'Δ%':>7s}",
    ]
    for path, entry in diff["spans"].items():
        base = entry["a_seconds"]
        pct = (entry["delta_seconds"] / base * 100.0) if base > 0 else float("inf")
        lines.append(
            f"{path:<44s} {entry['a_seconds'] * 1e3:>10.1f} "
            f"{entry['b_seconds'] * 1e3:>10.1f} "
            f"{entry['delta_seconds'] * 1e3:>+10.1f} "
            f"{pct:>+6.1f}%"
        )
    metrics = diff["metrics"]
    changed = [
        (kind, name, entry)
        for kind in ("counters", "gauges", "histogram_counts")
        for name, entry in metrics[kind].items()
        if not entry["equal"]
    ]
    lines.append("")
    if metrics["deterministic_equal"]:
        lines.append("metrics: zero deltas across all counters and gauges")
    else:
        lines.append("metric deltas:")
    for kind, name, entry in changed:
        lines.append(f"  [{kind}] {name}: {entry['a']} -> {entry['b']}")
    recovery_a, recovery_b = diff["recovery"]["a"], diff["recovery"]["b"]
    if recovery_a or recovery_b:
        lines.append("recovery events:")
        for name in sorted(set(recovery_a) | set(recovery_b)):
            lines.append(f"  {name}: A={recovery_a.get(name, 0):g} "
                         f"B={recovery_b.get(name, 0):g}")
    else:
        lines.append("recovery events: none in either run")
    return "\n".join(lines)
