"""SLO rules and the alerting engine evaluated on each live-sampler tick.

A rule is one comparison over a named telemetry value, written the way an
operator would say it::

    p99_latency_ms < 120
    serve.shed_rate < 0.05
    pool.respawns_per_min < 2

The *comparison states the objective* (what healthy looks like); an alert
fires when the observation violates it. Evaluation is edge-triggered:
a rule emits exactly one ``violation`` alert when it crosses from healthy
to violated (after ``for_ticks`` consecutive violating samples, default 1)
and exactly one ``recovery`` alert when it crosses back — never one alert
per violating tick, so a sustained breach is two lines in
``alerts.jsonl``, not thousands.

Alerts are structured events. Each one is

* appended durably to ``alerts.jsonl`` (single write + fsync, the
  :func:`repro.obs.run.append_jsonl` idiom — a SIGKILL leaves whole lines
  or nothing);
* emitted into the trace stream as an instantaneous ``slo.alert`` span
  carrying the rule, value, and threshold as attributes;
* counted into the metrics registry (``slo.violations`` /
  ``slo.recoveries`` plus a per-rule counter) when one is attached.

The engine is pure state-machine logic over ``(now, {name: value})``
dicts, so tests drive it with a fake clock and literal samples.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .run import append_jsonl

__all__ = ["SloRule", "SloRuleError", "Alert", "RuleState", "SloEngine",
           "load_alerts", "ALERT_SCHEMA_VERSION"]

ALERT_SCHEMA_VERSION = 1

#: metric name: dotted identifiers; op; numeric threshold; optional
#: debounce suffix (``for_ticks 3``).
_RULE_RE = re.compile(
    r"^\s*(?P<metric>[A-Za-z_][\w.]*)\s*"
    r"(?P<op><=|>=|<|>)\s*"
    r"(?P<threshold>[-+]?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)"
    r"(?:\s+for_ticks\s+(?P<for_ticks>\d+))?\s*$"
)

_OPS = {
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
}


class SloRuleError(ValueError):
    """A rule string does not parse (bad metric, operator, or threshold)."""


@dataclass(frozen=True)
class SloRule:
    """One service-level objective: ``metric OP threshold``.

    ``for_ticks`` debounces flappy signals: the rule only transitions to
    violated after that many *consecutive* violating samples. A missing
    metric on a tick neither violates nor heals — the streak is simply
    not advanced (the producer may not have started yet).
    """

    metric: str
    op: str
    threshold: float
    for_ticks: int = 1

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise SloRuleError(f"unknown operator {self.op!r}")
        if self.for_ticks < 1:
            raise SloRuleError("for_ticks must be >= 1")

    @classmethod
    def parse(cls, text: str, for_ticks: int = 1) -> "SloRule":
        """Parse ``"metric < threshold"``; an optional ``for_ticks N``
        suffix (``"train.steps_per_s > 0.5 for_ticks 3"``) sets the
        debounce and overrides the keyword default."""
        match = _RULE_RE.match(text)
        if match is None:
            raise SloRuleError(
                f"cannot parse SLO rule {text!r} "
                f"(expected 'metric < threshold [for_ticks N]', "
                f"ops: < <= > >=)")
        if match.group("for_ticks") is not None:
            for_ticks = int(match.group("for_ticks"))
        return cls(metric=match.group("metric"), op=match.group("op"),
                   threshold=float(match.group("threshold")),
                   for_ticks=for_ticks)

    def healthy(self, value: float) -> bool:
        """True when ``value`` satisfies the objective."""
        return _OPS[self.op](value, self.threshold)

    def __str__(self) -> str:
        base = f"{self.metric} {self.op} {self.threshold:g}"
        if self.for_ticks > 1:
            return f"{base} for_ticks {self.for_ticks}"
        return base


@dataclass(frozen=True)
class Alert:
    """One emitted SLO transition event (JSON-ready via :meth:`to_json`)."""

    t: float
    kind: str          # "violation" | "recovery"
    rule: str
    metric: str
    value: float
    threshold: float

    def to_json(self) -> dict:
        return {
            "schema_version": ALERT_SCHEMA_VERSION,
            "t": self.t,
            "kind": self.kind,
            "rule": self.rule,
            "metric": self.metric,
            "value": self.value,
            "threshold": self.threshold,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "Alert":
        return cls(t=float(payload["t"]), kind=str(payload["kind"]),
                   rule=str(payload["rule"]), metric=str(payload["metric"]),
                   value=float(payload["value"]),
                   threshold=float(payload["threshold"]))


@dataclass
class RuleState:
    """Mutable evaluation state of one rule."""

    rule: SloRule
    violated: bool = False
    streak: int = 0            # consecutive violating samples while healthy
    violations: int = 0        # transitions to violated
    samples: int = 0           # ticks that actually saw the metric
    last_value: Optional[float] = None
    last_change_t: Optional[float] = None


class SloEngine:
    """Evaluates a rule set against each sample window and emits alerts."""

    def __init__(self, rules: Sequence[SloRule] = (),
                 alerts_path: Optional[str] = None,
                 tracer=None, metrics=None):
        self.states: Dict[str, RuleState] = {
            str(rule): RuleState(rule) for rule in rules}
        self.alerts_path = alerts_path
        self.tracer = tracer
        self.metrics = metrics
        self.alerts: List[Alert] = []

    @property
    def rules(self) -> Tuple[SloRule, ...]:
        return tuple(state.rule for state in self.states.values())

    def add_rule(self, rule: SloRule) -> None:
        self.states.setdefault(str(rule), RuleState(rule))

    # ------------------------------------------------------------------
    def evaluate(self, now: float, values: Dict[str, float]) -> List[Alert]:
        """One tick: check every rule whose metric was observed.

        Returns the alerts emitted *this* tick (already sunk to file /
        trace / metrics).
        """
        emitted: List[Alert] = []
        for state in self.states.values():
            rule = state.rule
            value = values.get(rule.metric)
            if value is None:
                continue
            state.samples += 1
            state.last_value = value
            if rule.healthy(value):
                state.streak = 0
                if state.violated:
                    state.violated = False
                    state.last_change_t = now
                    emitted.append(Alert(now, "recovery", str(rule),
                                         rule.metric, value, rule.threshold))
            else:
                state.streak += 1
                if not state.violated and state.streak >= rule.for_ticks:
                    state.violated = True
                    state.violations += 1
                    state.last_change_t = now
                    emitted.append(Alert(now, "violation", str(rule),
                                         rule.metric, value, rule.threshold))
        for alert in emitted:
            self._emit(alert)
        return emitted

    def _emit(self, alert: Alert) -> None:
        self.alerts.append(alert)
        if self.alerts_path is not None:
            append_jsonl(self.alerts_path, alert.to_json())
        if self.tracer is not None:
            # An instantaneous span: the alert becomes part of the trace
            # timeline next to the spans it explains.
            with self.tracer.span("slo.alert", kind=alert.kind,
                                  rule=alert.rule, metric=alert.metric,
                                  value=alert.value,
                                  threshold=alert.threshold):
                pass
        if self.metrics is not None:
            kind = "violations" if alert.kind == "violation" else "recoveries"
            self.metrics.counter(f"slo.{kind}").inc()
            self.metrics.counter(f"slo.{kind}.{alert.metric}").inc()

    # ------------------------------------------------------------------
    def violated_rules(self) -> List[str]:
        return sorted(name for name, state in self.states.items()
                      if state.violated)

    def snapshot(self) -> dict:
        """JSON-ready per-rule state for dashboards/snapshots."""
        return {
            name: {
                "violated": state.violated,
                "violations": state.violations,
                "samples": state.samples,
                "last_value": state.last_value,
                "last_change_t": state.last_change_t,
            }
            for name, state in sorted(self.states.items())
        }


def load_alerts(path: str) -> List[Alert]:
    """Read an ``alerts.jsonl`` file back, tolerating a torn final line."""
    alerts: List[Alert] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                alerts.append(Alert.from_json(json.loads(line)))
            except (ValueError, KeyError):
                continue
    return alerts
