"""`repro.obs` — unified run telemetry (DESIGN.md §9).

One run identity ties every telemetry stream together:

* :class:`Run` — run id, config digest, RNG seeds, host info; written as
  an atomic run-manifest JSON at open, checkpoint, and close;
* :class:`Tracer` / :meth:`Run.span` — hierarchical span tracing
  (parent/child, wall-clock, counters, any-type attributes) with a
  buffered JSONL sink, threaded through the attack/GAN/detector trainers,
  :meth:`repro.av.AvPipeline.run`, batched detection, and the eval
  protocol, so one trace covers train → render → eval end to end;
* :class:`Metrics` — a counter/gauge/histogram registry that
  :class:`~repro.utils.logging.TrainLog`,
  :class:`~repro.perf.PerfRecorder`, and the runtime divergence guard
  publish into instead of inventing their own shapes;
* :mod:`.report` — loading, rendering, and two-run diffing of
  manifest/trace pairs (``scripts/obs_report.py`` is the CLI).

Everything is stdlib + numpy, and every instrumented path takes
``obs=None`` to stay zero-overhead without a run, mirroring the
``perf=None`` convention of :mod:`repro.perf`.
"""

from .export import (
    SPEEDSCOPE_SCHEMA,
    gather_dashboard,
    render_html,
    render_tty,
    sparkline,
    trace_to_speedscope,
    validate_speedscope,
)
from .history import (
    HistoryLoadResult,
    TrendVerdict,
    check_trend,
    detect_regression,
    load_history,
    metric_series,
    trend_summary,
)
from .live import (
    LIVE_SNAPSHOT_NAME,
    TRAIN_SNAPSHOT_NAME,
    LiveConfig,
    LiveTelemetry,
    Rollup,
    Timeseries,
    TrainerState,
    TrainTelemetry,
    load_live_snapshot,
    load_train_snapshot,
)
from .metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, Metrics
from .report import (
    LoadedRun,
    diff_runs,
    load_run,
    metric_deltas,
    render_diff,
    render_run,
    span_path_totals,
)
from .run import (
    MANIFEST_NAME,
    MANIFEST_SCHEMA_VERSION,
    TRACE_NAME,
    Run,
    append_jsonl,
    config_digest,
    host_info,
    span_scope,
    write_json_atomic,
)
from .slo import Alert, SloEngine, SloRule, SloRuleError, load_alerts
from .trace import SpanNode, SpanRecord, Tracer, build_tree, load_trace

__all__ = [
    "Run",
    "span_scope",
    "config_digest",
    "host_info",
    "write_json_atomic",
    "append_jsonl",
    "MANIFEST_SCHEMA_VERSION",
    "MANIFEST_NAME",
    "TRACE_NAME",
    "Tracer",
    "SpanRecord",
    "SpanNode",
    "load_trace",
    "build_tree",
    "Metrics",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "LoadedRun",
    "load_run",
    "render_run",
    "diff_runs",
    "render_diff",
    "metric_deltas",
    "span_path_totals",
    # live telemetry (DESIGN.md §12)
    "Timeseries",
    "Rollup",
    "LiveConfig",
    "LiveTelemetry",
    "TrainerState",
    "TrainTelemetry",
    "LIVE_SNAPSHOT_NAME",
    "TRAIN_SNAPSHOT_NAME",
    "load_live_snapshot",
    "load_train_snapshot",
    "SloRule",
    "SloRuleError",
    "SloEngine",
    "Alert",
    "load_alerts",
    # history trends
    "HistoryLoadResult",
    "TrendVerdict",
    "load_history",
    "metric_series",
    "detect_regression",
    "check_trend",
    "trend_summary",
    # exports
    "SPEEDSCOPE_SCHEMA",
    "trace_to_speedscope",
    "validate_speedscope",
    "gather_dashboard",
    "render_tty",
    "render_html",
    "sparkline",
]
