"""Run identity: one manifest per experiment run, one trace, one registry.

A :class:`Run` is the unit of provenance the paper's long multi-stage
pipelines were missing: every number a run produces is tied to a run id,
a config digest, the RNG seeds, and the host that produced it. The
manifest is written atomically (same discipline as
:mod:`repro.perf.report`) both when the run opens — so a crashed run still
leaves a ``status: "running"`` manifest behind — and when it closes, with
the final status and the full metrics snapshot.

Hot paths take ``obs=None`` and stay zero-overhead without a run, exactly
mirroring the ``perf=None`` convention (:func:`span_scope` is the
``stage_scope`` analogue).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import socket
import time
import uuid
from contextlib import nullcontext
from typing import Any, ContextManager, Dict, Optional

import numpy as np

from .metrics import Metrics
from .trace import Tracer

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "MANIFEST_NAME",
    "TRACE_NAME",
    "config_digest",
    "host_info",
    "Run",
    "span_scope",
    "write_json_atomic",
    "append_jsonl",
]

MANIFEST_SCHEMA_VERSION = 1
MANIFEST_NAME = "manifest.json"
TRACE_NAME = "trace.jsonl"


def _config_payload(config: Any) -> Any:
    if config is None:
        return None
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return dataclasses.asdict(config)
    if isinstance(config, dict):
        return config
    return repr(config)


def config_digest(config: Any) -> str:
    """Stable short digest of a config (dataclass, dict, or anything).

    Key order never matters: the canonical form is sorted JSON. Two runs
    with the same digest ran the same configuration, which is what makes
    a cross-run diff meaningful.
    """
    canonical = json.dumps(_config_payload(config), sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def host_info() -> Dict[str, Any]:
    """Where a run executed — enough to explain wall-clock differences."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "hostname": socket.gethostname(),
        "pid": os.getpid(),
    }


def write_json_atomic(path: str, document: dict) -> None:
    """Write JSON via a same-directory temp file + atomic rename."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    tmp_path = os.path.join(directory, f".{os.path.basename(path)}.{uuid.uuid4().hex}.tmp")
    try:
        with open(tmp_path, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True, default=repr)
            handle.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def append_jsonl(path: str, record: dict) -> None:
    """Append one JSON line durably (history logs, e.g. BENCH_history).

    The full line (payload + newline) goes down in a single ``write`` so
    a crash between writes can't interleave torn fragments, and the
    append is fsynced before the handle closes — a SIGKILL'd process
    leaves either the whole line or nothing, never a torn trailing line.
    """
    line = json.dumps(record, sort_keys=True, default=repr) + "\n"
    with open(path, "a") as handle:
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())


class Run:
    """Context manager owning one run's identity, trace, and metrics.

    Usage::

        with Run(run_dir, name="attack", config=cfg, seeds={"attack": 0}) as run:
            with run.span("attack.train", steps=cfg.steps):
                ...
            run.metrics.counter("attack.steps_run").inc()

    ``run_dir`` receives ``manifest.json`` and ``trace.jsonl``. The
    manifest is (re)written on entry, on :meth:`checkpoint`, and on exit;
    the trace streams incrementally through the tracer's buffered sink.
    """

    def __init__(self, directory: str, name: str = "run",
                 config: Any = None, seeds: Optional[Dict[str, int]] = None,
                 run_id: Optional[str] = None, buffer_limit: int = 64):
        self.directory = directory
        self.name = name
        self.config = config
        self.seeds = dict(seeds or {})
        self.run_id = run_id or f"{name}-{uuid.uuid4().hex[:12]}"
        self.status = "created"
        self.error: Optional[str] = None
        self.started_unix: Optional[float] = None
        self.finished_unix: Optional[float] = None
        os.makedirs(directory, exist_ok=True)
        self.trace_path = os.path.join(directory, TRACE_NAME)
        self.manifest_path = os.path.join(directory, MANIFEST_NAME)
        self.tracer = Tracer(sink_path=self.trace_path, buffer_limit=buffer_limit)
        self.metrics = Metrics()

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> ContextManager:
        return self.tracer.span(name, **attrs)

    def manifest(self) -> dict:
        document = {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "run_id": self.run_id,
            "name": self.name,
            "status": self.status,
            "config_digest": config_digest(self.config),
            "config": _config_payload(self.config),
            "seeds": dict(self.seeds),
            "host": host_info(),
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "trace_path": TRACE_NAME,
            "metrics": self.metrics.snapshot(),
        }
        if self.error is not None:
            document["error"] = self.error
        return document

    def write_manifest(self) -> dict:
        document = self.manifest()
        write_json_atomic(self.manifest_path, document)
        return document

    def checkpoint(self) -> None:
        """Flush the trace and persist the current manifest mid-run."""
        self.tracer.flush()
        self.write_manifest()

    # ------------------------------------------------------------------
    def __enter__(self) -> "Run":
        self.status = "running"
        self.started_unix = time.time()
        self.write_manifest()
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        self.finished_unix = time.time()
        if exc_type is None:
            self.status = "completed"
        else:
            self.status = "failed"
            self.error = f"{exc_type.__name__}: {exc}"
        self.tracer.flush()
        self.write_manifest()
        return False


def span_scope(obs: Optional[Run], name: str, **attrs: Any) -> ContextManager:
    """``obs.span(...)`` when a run (or tracer) is attached, else a no-op.

    The observability analogue of :func:`repro.perf.stage_scope`: hot
    paths thread ``obs`` through unconditionally and pay nothing when it
    is ``None``.
    """
    if obs is None:
        return nullcontext()
    return obs.span(name, **attrs)
