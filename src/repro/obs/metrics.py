"""Typed metric instruments with one shared registry per run.

Before this module every telemetry producer invented its own shape:
:class:`~repro.utils.logging.TrainLog` kept lists of record dicts,
:class:`~repro.perf.PerfRecorder` kept ``StageStats``, and the runtime
guard logged recovery events as free-form dicts. The :class:`Metrics`
registry gives them one vocabulary — counter / gauge / histogram — so a
run's quantitative state serializes to a single JSON-ready snapshot and
two runs can be diffed instrument by instrument (``scripts/obs_report.py``).

Counters and gauges are deterministic for a fixed seed (they carry step
counts, losses, frame counts); histograms are where nondeterministic
observations (wall-clock seconds) go, keeping the deterministic surface
cleanly separable for cross-run comparison.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "Metrics", "DEFAULT_BUCKETS"]

#: Default histogram buckets: log-spaced upper bounds that cover everything
#: from sub-millisecond stage timings to multi-minute training phases.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 600.0,
    float("inf"),
)


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += float(amount)

    def summary(self) -> float:
        return self.value


class Gauge:
    """A last-value-wins scalar (loss, learning rate, fps)."""

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = float("nan")
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1

    def summary(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket distribution summary (count / sum / min / max / buckets).

    Buckets are upper bounds; the last bound must be ``+inf`` so every
    observation lands somewhere. Only the summary is retained — individual
    observations are never stored, so a histogram stays O(buckets) no
    matter how long the run.
    """

    kind = "histogram"

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or sorted(bounds) != list(bounds):
            raise ValueError(f"histogram {name!r} buckets must be sorted")
        if bounds[-1] != float("inf"):
            bounds = bounds + (float("inf"),)
        self.name = name
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-th percentile from the bucket counts.

        Returns ``None`` for an empty histogram. The estimate interpolates
        linearly within the bucket holding the target rank, clamped to the
        observed ``[min, max]`` — so a single-sample histogram returns that
        sample exactly, and the top bucket (upper bound ``+inf``) resolves
        to the observed max rather than infinity.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile {q} must be in [0, 100]")
        if self.count == 0:
            return None
        target = (q / 100.0) * self.count
        if target <= 0:
            return self.min
        cumulative = 0
        lower = self.min
        for bound, count in zip(self.bounds, self.counts):
            if count == 0:
                continue
            upper = min(bound, self.max)
            if cumulative + count >= target:
                fraction = (target - cumulative) / count
                value = lower + fraction * (upper - lower)
                return min(max(value, self.min), self.max)
            cumulative += count
            lower = max(lower, upper)
        return self.max

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean(),
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {
                ("inf" if bound == float("inf") else repr(bound)): count
                for bound, count in zip(self.bounds, self.counts)
                if count
            },
        }


class Metrics:
    """Get-or-create registry of named instruments.

    Names are dotted paths (``attack.steps_run``, ``perf.forward.seconds``).
    Re-registering a name with a different instrument kind is an error —
    it means two producers disagree about what the metric is.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def _get(self, name: str, factory, kind: str):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif instrument.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {instrument.kind}, "
                f"requested {kind}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, lambda: Counter(name), "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(name, lambda: Gauge(name), "gauge")

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._get(
            name, lambda: Histogram(name, buckets or DEFAULT_BUCKETS),
            "histogram",
        )

    # ------------------------------------------------------------------
    def names(self, kind: Optional[str] = None) -> List[str]:
        return sorted(
            name for name, inst in self._instruments.items()
            if kind is None or inst.kind == kind
        )

    def snapshot(self) -> dict:
        """JSON-ready state of every instrument, grouped by kind."""
        out: Dict[str, Dict[str, object]] = {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        for name in self.names():
            instrument = self._instruments[name]
            out[instrument.kind + "s"][name] = instrument.summary()
        return out
